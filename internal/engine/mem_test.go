package engine_test

// Resource-governance tests: the SET STATEMENT_MEMORY surface, the
// budget-abort contract (typed error, all-or-nothing writes, reusable
// session) and the accounting-leak invariant — after every statement,
// however it ended, the session and engine-wide accounts must read
// zero, because Reset returns the statement's whole balance to the
// parent. Run under -race these also check the account's atomics.

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"tip/internal/engine"
)

// seedMem loads n rows with keys, values and elements — enough variety
// to drive every buffering operator.
func seedMem(t *testing.T, s *engine.Session, n int) {
	t.Helper()
	mustExec(t, s, `CREATE TABLE m (k INT, v INT, valid Element)`)
	vals := make([]string, 0, n)
	for i := 0; i < n; i++ {
		lo := 1 + i%28
		hi := 1 + (i*5)%28
		vals = append(vals, fmt.Sprintf("(%d, %d, '[1998-01-%02d, 1998-02-%02d]')",
			i%7, i, lo, hi))
	}
	mustExec(t, s, "INSERT INTO m VALUES "+strings.Join(vals, ", "))
}

// drained fails the test unless both the session-level (via the global
// parent) and engine-wide accounts are back to zero.
func drained(t *testing.T, db *engine.Database, when string) {
	t.Helper()
	if used := db.MemAccount().Used(); used != 0 {
		t.Errorf("%s: global account holds %d bytes, want 0", when, used)
	}
}

func TestSetStatementMemory(t *testing.T) {
	db, s := newDB(t)
	seedMem(t, s, 50)

	mustExec(t, s, `SET STATEMENT_MEMORY = '1MB'`)
	if got := s.StmtMem(); got != 1<<20 {
		t.Errorf("StmtMem after '1MB' = %d", got)
	}
	mustExec(t, s, `SET STATEMENT_MEMORY = 4096`)
	if got := s.StmtMem(); got != 4096 {
		t.Errorf("StmtMem after 4096 = %d", got)
	}
	mustExec(t, s, `SET STATEMENT_MEMORY = DEFAULT`)
	if got := s.StmtMem(); got != 0 {
		t.Errorf("StmtMem after DEFAULT = %d", got)
	}
	s.SetDefaultStmtMem(2048)
	mustExec(t, s, `SET STATEMENT_MEMORY = 0`)
	mustExec(t, s, `SET STATEMENT_MEMORY = DEFAULT`)
	if got := s.StmtMem(); got != 2048 {
		t.Errorf("StmtMem after DEFAULT with server default = %d", got)
	}
	for _, bad := range []string{
		`SET STATEMENT_MEMORY = -1`,
		`SET STATEMENT_MEMORY = NULL`,
		`SET STATEMENT_MEMORY = 'lots'`,
		`SET STATEMENT_MEMORY = '64TB'`,
	} {
		if _, err := s.Exec(bad, nil); err == nil {
			t.Errorf("%s accepted", bad)
		}
	}
	drained(t, db, "after SET statements")
}

func TestBudgetAbortTypedAndReusable(t *testing.T) {
	db, s := newDB(t)
	seedMem(t, s, 200)

	mustExec(t, s, `SET STATEMENT_MEMORY = '32KB'`)
	_, err := s.Exec(`SELECT a.k, a.v, b.k, b.v FROM m a, m b ORDER BY a.v, b.v`, nil)
	if !errors.Is(err, engine.ErrMemory) {
		t.Fatalf("cross-product sort under 32KB: err = %v, want ErrMemory", err)
	}
	drained(t, db, "after budget abort")
	// Overshoot past the budget is bounded by the poll cadence: a batch
	// of charges plus the 64KiB runtime-local flush threshold, not the
	// megabytes the statement was heading for.
	if peak := s.MemPeak(); peak <= 0 || peak > 256<<10 {
		t.Errorf("aborted statement peak = %d, want (0, 256KiB]", peak)
	}
	// The session stays usable, and lifting the budget lets it run.
	mustExec(t, s, `SET STATEMENT_MEMORY = 0`)
	res := mustExec(t, s, `SELECT COUNT(*) FROM m`)
	if res.Rows[0][0].Int() != 200 {
		t.Errorf("count = %d", res.Rows[0][0].Int())
	}
	if c := counterValue(db, "stmt.mem_exceeded"); c < 1 {
		t.Errorf("stmt.mem_exceeded = %v, want >= 1", c)
	}
	drained(t, db, "after recovery")
}

// TestBudgetAbortWriteAtomicity: a memory abort inside a write applies
// nothing, exactly like cancellation.
func TestBudgetAbortWriteAtomicity(t *testing.T) {
	db, s := newDB(t)
	seedMem(t, s, 200)
	mustExec(t, s, `CREATE TABLE sink (k INT, v INT, k2 INT, v2 INT)`)

	mustExec(t, s, `SET STATEMENT_MEMORY = '32KB'`)
	_, err := s.Exec(`INSERT INTO sink
		SELECT a.k, a.v, b.k, b.v FROM m a, m b ORDER BY a.v DESC, b.v DESC`, nil)
	if !errors.Is(err, engine.ErrMemory) {
		t.Fatalf("err = %v, want ErrMemory", err)
	}
	mustExec(t, s, `SET STATEMENT_MEMORY = 0`)
	if n := count(t, s, `SELECT COUNT(*) FROM sink`); n != 0 {
		t.Errorf("aborted INSERT left %d rows", n)
	}
	drained(t, db, "after write abort")
}

// TestMemAccountingLeakInvariant drives an operator matrix to every
// kind of ending — success, memory abort, timeout, interrupt, rollback
// — and demands the accounts drain to zero each time.
func TestMemAccountingLeakInvariant(t *testing.T) {
	db, s := newDB(t)
	seedMem(t, s, 300)

	matrix := []string{
		// sort (full + top-k)
		`SELECT k, v FROM m ORDER BY v DESC, k`,
		`SELECT k, v FROM m ORDER BY v LIMIT 7 OFFSET 2`,
		// hash join + nested loop
		`SELECT a.k, b.v FROM m a, m b WHERE a.k = b.k ORDER BY a.k, b.v LIMIT 20`,
		// aggregation + DISTINCT aggregate
		`SELECT k, SUM(v), COUNT(DISTINCT v) FROM m GROUP BY k ORDER BY k`,
		// DISTINCT select
		`SELECT DISTINCT k, v FROM m`,
		// coalesce (grouped element union)
		`SELECT k, group_union(valid) FROM m GROUP BY k ORDER BY k`,
		// set operations
		`SELECT k FROM m UNION SELECT v FROM m ORDER BY 1 LIMIT 5`,
		`SELECT k FROM m EXCEPT SELECT 3 FROM m`,
		// write path
		`UPDATE m SET v = v + 0 WHERE k = 1`,
	}

	run := func(name string, prep func(), after func()) {
		for _, q := range matrix {
			prep()
			_, _ = s.Exec(q, nil)
			if after != nil {
				after()
			}
			drained(t, db, name+": "+q)
		}
	}

	// Success (no budget).
	run("success", func() { s.SetDefaultStmtMem(0) }, nil)
	// Memory abort (tiny budget: most of the matrix trips it).
	run("mem-abort", func() { s.SetDefaultStmtMem(8 << 10) }, nil)
	// Timeout racing the executor.
	run("timeout", func() {
		s.SetDefaultStmtMem(0)
		s.SetDefaultStmtTimeout(1 * time.Nanosecond)
	}, func() { s.SetDefaultStmtTimeout(0) })
	// Interrupt landing mid-statement (or pending, aborting the next).
	run("interrupt", func() {
		s.SetDefaultStmtMem(0)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { defer wg.Done(); s.Interrupt() }()
		wg.Wait()
	}, nil)

	// Rollback: buffered reads inside an explicit transaction, undone.
	s.SetDefaultStmtMem(0)
	mustExec(t, s, `BEGIN`)
	mustExec(t, s, `UPDATE m SET v = v + 1`)
	mustExec(t, s, `SELECT k, v FROM m ORDER BY v DESC LIMIT 3`)
	mustExec(t, s, `ROLLBACK`)
	drained(t, db, "after rollback")
}

// TestAccountingCoverage proves the accountant sees at least 90% of a
// buffering query's real intermediate state: the accounted peak of a
// cross-product sort must come within 10% of (in practice, above) an
// analytic floor on the bytes the operators must hold.
func TestAccountingCoverage(t *testing.T) {
	db, s := newDB(t)
	const n = 120
	seedMem(t, s, n)

	mustExec(t, s, `SELECT a.k, a.v, b.k, b.v FROM m a, m b ORDER BY a.v, b.v, a.k, b.k`)
	peak := s.MemPeak()
	// Floor: the projected cross product alone is n² rows × 4 values
	// (64B each, as the accountant sizes them) — ignoring the join
	// buffers, sort keys and row headers also resident at the sort.
	floor := int64(n) * int64(n) * 4 * 64
	if peak < floor*9/10 {
		t.Errorf("accounted peak %d < 90%% of intermediate-state floor %d", peak, floor)
	}
	drained(t, db, "after coverage query")
}

func counterValue(db *engine.Database, name string) float64 {
	for _, st := range db.Metrics().Snapshot() {
		if st.Name == name {
			return st.Value
		}
	}
	return 0
}
