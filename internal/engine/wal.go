package engine

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tip/internal/blade"
	"tip/internal/sql/ast"
	"tip/internal/temporal"
	"tip/internal/types"
)

// Statement-level write-ahead logging. Between snapshots, every
// successful state-changing statement (DDL, DML, transaction control)
// is appended to the log together with the NOW it executed under, so a
// restart can replay it with identical temporal semantics. Checkpoint
// writes a snapshot and truncates the log.
//
// The log is a redo log of statements, not of row changes: replay
// re-executes the SQL. A transaction left open at the end of the log
// (crash mid-transaction) is rolled back after replay.
//
// Frame layout (length-prefixed, checksummed, epoch-stamped):
//
//	uvarint bodyLen
//	uint32  CRC32C of the rest of the body (little-endian)
//	uvarint epoch   — durability epoch; frames older than the
//	                  snapshot's epoch are skipped at replay
//	uvarint seq     — frame sequence number, consecutive within a log
//	payload: int64 now, str sql, uvarint nParams,
//	         (str name, str typeName, value)*  — names sorted, so
//	         identical runs produce byte-identical logs
//
// The checksum makes corruption anywhere in a frame detectable: replay
// applies every frame up to the first damaged one and surfaces ErrWAL
// instead of executing damaged SQL. A frame cut short by a crash (torn
// tail) ends replay cleanly. The epoch closes the checkpoint crash
// window: Checkpoint stamps the new snapshot with epoch+1 before
// truncating the log, so if the truncate never happens the stale frames
// are skipped rather than double-applied on top of the snapshot.
//
// Durability is a policy (SetDurability): SyncOnCheckpoint flushes to
// the OS on every append and fsyncs only at Checkpoint (an OS crash can
// lose the tail); SyncEveryAppend fsyncs before the statement returns,
// with concurrent appenders sharing one fsync (group commit);
// SyncGrouped bounds the loss window to an interval by fsyncing from a
// background syncer.

// walMaxFrame bounds a frame's decoded length. A corrupt length prefix
// must not turn into an unbounded allocation at replay; no legitimate
// statement payload approaches this.
const walMaxFrame = 64 << 20

// walCRC is the Castagnoli polynomial table (hardware-accelerated on
// most platforms).
var walCRC = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy selects when WAL appends are fsynced; see SetDurability.
type SyncPolicy int32

const (
	// SyncOnCheckpoint (the default) flushes appends to the OS but
	// fsyncs only at Checkpoint: commits survive a process crash, not
	// necessarily an OS crash or power loss.
	SyncOnCheckpoint SyncPolicy = iota
	// SyncEveryAppend fsyncs before a statement's Exec returns.
	// Concurrent appenders are batched into one fsync (group commit).
	SyncEveryAppend
	// SyncGrouped fsyncs from a background syncer at a fixed interval:
	// a power loss can take back at most the last interval's commits.
	SyncGrouped
)

// walSink is the file behind the log: an *os.File in production, a
// fault-injection wrapper (internal/iofault) in crash tests.
type walSink interface {
	io.Writer
	Sync() error
	Truncate(size int64) error
	Seek(offset int64, whence int) (int64, error)
	Close() error
}

// wal is the open log file.
type wal struct {
	mu sync.Mutex
	f  walSink
	w  *bufio.Writer
	// failed is the first append error, sticky: once an append fails
	// the log may end in a torn record, so no further records are
	// written — the file stays a consistent (replayable) prefix of the
	// in-memory history until Checkpoint truncates and heals it.
	failed error
	epoch  uint64 // stamped on new frames; bumped by Checkpoint (guarded by mu)
	seq    uint64 // last assigned frame seq (guarded by mu)

	// Group commit: appenders record the highest seq flushed to the
	// file; fsyncs are serialized on syncMu, and one fsync covers every
	// frame flushed before it started, so concurrent SyncEveryAppend
	// committers behind the same fsync all return without a second one.
	flushedSeq atomic.Uint64 // highest seq written through to f
	syncedSeq  atomic.Uint64 // highest seq known durable (fsynced)
	syncMu     sync.Mutex    // serializes fsyncs

	// subs are live replication subscribers (see SubscribeWAL). Guarded
	// by mu; frames are published in append order while the lock is held,
	// so every subscriber sees a gap-free suffix of the stream until its
	// buffer overruns (the sub is then closed and must re-catch-up from
	// the file).
	subs map[*WALSub]struct{}

	stop chan struct{} // closed by DisableWAL to end the group syncer
	done chan struct{} // closed when the syncer goroutine exits
}

// ErrWAL reports a malformed log: a frame whose checksum does not match
// its bytes, an impossible length, or a sequence gap. Replay applies
// everything before the damaged frame and stops.
var ErrWAL = errors.New("engine: corrupt WAL")

// ErrWALFailed reports that a statement applied in memory but could not
// be appended to the WAL (or, under SyncEveryAppend, not fsynced). The
// statement's result is still returned to the caller; the log stops
// growing so it remains a consistent prefix. Checkpoint clears the
// condition (the snapshot captures the state the log no longer covers).
var ErrWALFailed = errors.New("engine: WAL append failed; statement applied but not logged")

// SetDurability selects the WAL fsync policy. groupInterval is the
// background fsync cadence for SyncGrouped (ignored by the other
// policies; <=0 keeps the current interval, default 2ms). Safe to call
// before or after EnableWAL.
func (db *Database) SetDurability(p SyncPolicy, groupInterval time.Duration) {
	if groupInterval > 0 {
		db.syncInterval.Store(int64(groupInterval))
	}
	db.syncPolicy.Store(int32(p))
}

// Durability returns the current sync policy.
func (db *Database) Durability() SyncPolicy {
	return SyncPolicy(db.syncPolicy.Load())
}

// EnableWAL starts appending state-changing statements to path,
// creating the file if needed. Call Load and ReplayWAL first when
// recovering: they establish the durability epoch and the next frame
// sequence number that new appends continue from.
func (db *Database) EnableWAL(path string) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("engine: wal: %w", err)
	}
	if err := db.enableWALSink(f); err != nil {
		_ = f.Close()
		return err
	}
	return nil
}

// enableWALSink installs an already-open sink as the log. Split from
// EnableWAL so crash tests can inject a fault layer.
func (db *Database) enableWALSink(f walSink) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.wal != nil {
		return fmt.Errorf("engine: WAL already enabled")
	}
	w := &wal{
		f:     f,
		w:     bufio.NewWriter(f),
		epoch: db.epoch,
		seq:   db.walSeq,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	w.flushedSeq.Store(w.seq)
	w.syncedSeq.Store(w.seq)
	db.wal = w
	go db.walSyncer(w)
	return nil
}

// DisableWAL stops logging, fsyncs what was appended and closes the
// file.
func (db *Database) DisableWAL() error {
	db.mu.Lock()
	w := db.wal
	db.wal = nil
	db.mu.Unlock()
	if w == nil {
		return nil
	}
	close(w.stop)
	<-w.done
	w.mu.Lock()
	defer w.mu.Unlock()
	for sub := range w.subs {
		delete(w.subs, sub)
		close(sub.ch)
	}
	flushErr := w.failed
	if flushErr == nil {
		flushErr = w.w.Flush()
	}
	if flushErr == nil {
		flushErr = w.f.Sync()
	}
	closeErr := w.f.Close()
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// walSyncer is the background group-commit loop: under SyncGrouped it
// fsyncs any frames flushed since the last sync, bounding the loss
// window to the configured interval. It runs for every enabled WAL
// (the off-policy tick is a couple of atomic loads) so switching
// policies at runtime needs no goroutine management.
func (db *Database) walSyncer(w *wal) {
	defer close(w.done)
	for {
		d := time.Duration(db.syncInterval.Load())
		timer := time.NewTimer(d)
		select {
		case <-w.stop:
			timer.Stop()
			return
		case <-timer.C:
		}
		if SyncPolicy(db.syncPolicy.Load()) != SyncGrouped {
			continue
		}
		if target := w.flushedSeq.Load(); target > w.syncedSeq.Load() {
			w.mu.Lock()
			broken := w.failed != nil
			w.mu.Unlock()
			if !broken {
				_ = db.walSyncTo(w, target) // a failed fsync is caught by the next strict append or Checkpoint
			}
		}
	}
}

// walSyncTo makes frame seq durable: it fsyncs unless a concurrent
// fsync already covered it. One fsync covers every frame flushed before
// it started, which is what batches concurrent committers.
func (db *Database) walSyncTo(w *wal, seq uint64) error {
	if w.syncedSeq.Load() >= seq {
		return nil
	}
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.syncedSeq.Load() >= seq {
		return nil
	}
	target := w.flushedSeq.Load()
	start := time.Now()
	err := w.f.Sync()
	if o := db.obs; o.enabled() {
		o.walFsyncs.Inc()
		o.walFsyncLat.Observe(time.Since(start).Nanoseconds())
	}
	if err != nil {
		return err
	}
	w.syncedSeq.Store(target)
	return nil
}

// Checkpoint writes a snapshot under the next durability epoch, then
// truncates the log: recovery needs only the snapshot plus the (empty)
// log. The epoch ordering closes the crash window between the two
// steps — a snapshot at epoch e+1 makes replay skip every frame still
// stamped e, so a crash before the truncate cannot double-apply them.
// Writers are quiesced (db.ckpt held exclusively) so no statement
// straddles the snapshot with its WAL frame.
func (db *Database) Checkpoint(snapshotPath string) error {
	db.ckpt.Lock()
	defer db.ckpt.Unlock()
	db.mu.RLock()
	w := db.wal
	epoch := db.epoch
	db.mu.RUnlock()
	if w == nil {
		// No log to truncate: a plain consistent snapshot at the
		// current epoch.
		return db.save(snapshotPath, epoch)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	newEpoch := w.epoch + 1
	if err := db.save(snapshotPath, newEpoch); err != nil {
		return err
	}
	// The snapshot at newEpoch is on disk: commit the epoch so frames
	// appended from here on replay on top of it, even if the truncate
	// below fails — stale frames stay skippable either way.
	w.epoch = newEpoch
	db.mu.Lock()
	db.epoch = newEpoch
	db.mu.Unlock()
	// A failed WAL may hold a poisoned buffered writer and a torn tail
	// on disk; the snapshot supersedes both, so drop the buffer and let
	// the truncate heal the log.
	w.w.Reset(w.f)
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("engine: checkpoint: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("engine: checkpoint: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("engine: checkpoint: %w", err)
	}
	w.failed = nil
	// Everything logged so far is inside the snapshot: nothing awaits
	// an fsync.
	w.flushedSeq.Store(w.seq)
	w.syncedSeq.Store(w.seq)
	// The truncate discarded every frame up to w.seq: replication
	// catch-up below that point must go through a snapshot (WALBase).
	db.mu.Lock()
	db.walBase = w.seq
	db.mu.Unlock()
	return nil
}

// loggable reports whether a statement changes database state and must
// be redone at recovery.
func loggable(stmt ast.Statement) bool {
	switch stmt.(type) {
	case *ast.CreateTable, *ast.DropTable, *ast.CreateIndex, *ast.DropIndex,
		*ast.Insert, *ast.Update, *ast.Delete,
		*ast.Begin, *ast.Commit, *ast.Rollback:
		return true
	default:
		return false
	}
}

// encodeWALPayload serializes one statement. Parameter names are
// sorted so identical runs produce byte-identical logs (map iteration
// order must not leak into the file).
func encodeWALPayload(now temporal.Chronon, sql string, params map[string]types.Value) []byte {
	var buf []byte
	buf = binary.LittleEndian.AppendUint64(buf, uint64(now))
	buf = appendString(buf, sql)
	buf = binary.AppendUvarint(buf, uint64(len(params)))
	names := make([]string, 0, len(params))
	for name := range params {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := params[name]
		buf = appendString(buf, name)
		tname := ""
		if v.T != nil && v.T.Kind != types.KindNull {
			tname = v.T.Name
		}
		buf = appendString(buf, tname)
		buf = v.AppendBinary(buf)
	}
	return buf
}

// encodeWALFrameBody builds a frame body — everything after the length
// prefix: {CRC32C, epoch, seq, payload}. The body is the unit shipped
// verbatim to replication subscribers (MsgWALFrame), so a replica
// verifies the same checksum the local replay would.
func encodeWALFrameBody(epoch, seq uint64, payload []byte) []byte {
	var inner []byte
	inner = binary.AppendUvarint(inner, epoch)
	inner = binary.AppendUvarint(inner, seq)
	inner = append(inner, payload...)
	body := make([]byte, 0, len(inner)+4)
	body = binary.LittleEndian.AppendUint32(body, crc32.Checksum(inner, walCRC))
	return append(body, inner...)
}

// appendWALFrame wraps a payload into a length-prefixed checksummed
// frame under the given epoch and seq.
func appendWALFrame(dst []byte, epoch, seq uint64, payload []byte) []byte {
	body := encodeWALFrameBody(epoch, seq, payload)
	dst = binary.AppendUvarint(dst, uint64(len(body)))
	return append(dst, body...)
}

// walFrame is one decoded log frame.
type walFrame struct {
	epoch   uint64
	seq     uint64
	payload []byte
}

// decodeWALFrame validates and splits a frame body (everything after
// the length prefix). The payload aliases body.
func decodeWALFrame(body []byte) (walFrame, error) {
	if len(body) < 4 {
		return walFrame{}, fmt.Errorf("%w: short frame", ErrWAL)
	}
	sum := binary.LittleEndian.Uint32(body)
	rest := body[4:]
	if crc32.Checksum(rest, walCRC) != sum {
		return walFrame{}, fmt.Errorf("%w: bad checksum", ErrWAL)
	}
	epoch, n := binary.Uvarint(rest)
	if n <= 0 {
		return walFrame{}, fmt.Errorf("%w: epoch", ErrWAL)
	}
	rest = rest[n:]
	seq, n := binary.Uvarint(rest)
	if n <= 0 {
		return walFrame{}, fmt.Errorf("%w: seq", ErrWAL)
	}
	return walFrame{epoch: epoch, seq: seq, payload: rest[n:]}, nil
}

// logStatement appends one executed statement to the WAL and, under
// SyncEveryAppend, fsyncs before returning.
func (db *Database) logStatement(now temporal.Chronon, sql string, params map[string]types.Value) error {
	db.mu.RLock()
	w := db.wal
	db.mu.RUnlock()
	if w == nil {
		return nil
	}
	payload := encodeWALPayload(now, sql, params)
	obsOn := db.obs.enabled()
	seq, size, err := func() (uint64, int, error) {
		w.mu.Lock()
		defer w.mu.Unlock()
		if w.failed != nil {
			return 0, 0, fmt.Errorf("%w (first failure: %v)", ErrWALFailed, w.failed)
		}
		body := encodeWALFrameBody(w.epoch, w.seq+1, payload)
		var hdr [binary.MaxVarintLen64]byte
		hn := binary.PutUvarint(hdr[:], uint64(len(body)))
		if _, err := w.w.Write(hdr[:hn]); err != nil {
			w.failed = err
			return 0, 0, fmt.Errorf("%w: %v", ErrWALFailed, err)
		}
		if _, err := w.w.Write(body); err != nil {
			w.failed = err
			return 0, 0, fmt.Errorf("%w: %v", ErrWALFailed, err)
		}
		if err := w.w.Flush(); err != nil {
			w.failed = err
			return 0, 0, fmt.Errorf("%w: %v", ErrWALFailed, err)
		}
		w.seq++
		w.flushedSeq.Store(w.seq)
		w.publishLocked(ReplFrame{Epoch: w.epoch, Seq: w.seq, Body: body})
		return w.seq, hn + len(body), nil
	}()
	if err != nil {
		if obsOn {
			db.obs.walFailures.Inc()
		}
		return err
	}
	if obsOn {
		db.obs.walAppends.Inc()
		db.obs.walBytes.Add(uint64(size))
	}
	if SyncPolicy(db.syncPolicy.Load()) == SyncEveryAppend {
		if err := db.walSyncTo(w, seq); err != nil {
			w.mu.Lock()
			if w.failed == nil {
				w.failed = err
			}
			w.mu.Unlock()
			if obsOn {
				db.obs.walFailures.Inc()
			}
			return fmt.Errorf("%w: fsync: %v", ErrWALFailed, err)
		}
	}
	return nil
}

// ReplayWAL re-executes the statements logged in path against this
// database (typically right after loading the matching snapshot).
// Frames are streamed through a bounded buffer, so recovery memory
// scales with the largest record, not the log size. Each statement runs
// under the NOW it originally executed with; frames from an epoch older
// than the loaded snapshot's are skipped (they are already inside the
// snapshot). A transaction still open at the end of the log is rolled
// back. A truncated trailing record (torn write at crash) ends replay
// cleanly; a checksum mismatch or sequence gap stops replay at the last
// valid frame and surfaces ErrWAL.
func (db *Database) ReplayWAL(path string) error {
	return db.ReplayWALRange(path, 0, ^uint64(0))
}

// ReplayWALRange replays only the frames with afterSeq < seq ≤ upToSeq.
// Every frame up to upToSeq is still scanned, checksummed and
// gap-checked — the bounds select which statements re-execute, not how
// much of the log is validated — and epoch-skipping applies as in
// ReplayWAL. The full range (0, ^uint64(0)) is crash recovery; a
// tighter upToSeq reconstructs the database as of a specific frame for
// point-in-time debugging, and a raised afterSeq resumes replay on a
// state already caught up through afterSeq (the replication catch-up
// path). After a bounded replay the database reflects a log prefix;
// enabling the WAL on it and appending would fork history, so treat
// point-in-time states as read-only.
func (db *Database) ReplayWALRange(path string, afterSeq, upToSeq uint64) error {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("engine: wal replay: %w", err)
	}
	defer f.Close()
	db.mu.RLock()
	snapEpoch := db.epoch
	db.mu.RUnlock()

	sess := db.NewSession()
	defer func() {
		if sess.InTransaction() {
			_, _ = sess.ExecStmt(&ast.Rollback{}, nil)
		}
		sess.nowOverride = nil
	}()

	r := bufio.NewReaderSize(f, 64<<10)
	var (
		body     []byte // reused frame buffer
		firstSeq uint64
		lastSeq  uint64
		haveSeq  bool
		frameIdx int
		maxEpoch = snapEpoch
	)
	for {
		n, err := binary.ReadUvarint(r)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return db.finishReplay(maxEpoch, firstSeq, lastSeq, haveSeq)
			}
			return fmt.Errorf("%w: frame %d length (after seq %d): %v", ErrWAL, frameIdx+1, lastSeq, err)
		}
		if n > walMaxFrame {
			return fmt.Errorf("%w: frame %d length %d (after seq %d)", ErrWAL, frameIdx+1, n, lastSeq)
		}
		if uint64(cap(body)) < n {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := io.ReadFull(r, body); err != nil {
			// Torn tail: the crash cut the last frame short. Everything
			// before it replayed.
			return db.finishReplay(maxEpoch, firstSeq, lastSeq, haveSeq)
		}
		frameIdx++
		fr, err := decodeWALFrame(body)
		if err != nil {
			return fmt.Errorf("frame %d (after seq %d): %w", frameIdx, lastSeq, err)
		}
		if haveSeq && fr.seq != lastSeq+1 {
			return fmt.Errorf("%w: frame %d seq %d, want %d", ErrWAL, frameIdx, fr.seq, lastSeq+1)
		}
		if !haveSeq {
			firstSeq = fr.seq
		}
		lastSeq, haveSeq = fr.seq, true
		if fr.seq > upToSeq {
			prev := fr.seq - 1
			return db.finishReplay(maxEpoch, firstSeq, prev, prev >= firstSeq)
		}
		if fr.epoch > maxEpoch {
			maxEpoch = fr.epoch
		}
		if fr.epoch < snapEpoch {
			// Pre-checkpoint frame: its effect is inside the snapshot
			// (the checkpoint crashed before truncating the log).
			continue
		}
		if fr.seq <= afterSeq {
			// Already applied (replica catch-up resuming mid-log).
			continue
		}
		if err := db.replayRecord(sess, fr.payload); err != nil {
			return err
		}
	}
}

// finishReplay records where the log started and ended so EnableWAL
// continues the epoch and sequence numbering from there and replication
// knows the oldest frame still on disk (WALBase).
func (db *Database) finishReplay(maxEpoch, firstSeq, lastSeq uint64, haveSeq bool) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if maxEpoch > db.epoch {
		db.epoch = maxEpoch
	}
	if haveSeq && lastSeq > db.walSeq {
		db.walSeq = lastSeq
	}
	if haveSeq {
		db.walBase = firstSeq - 1
	} else {
		db.walBase = db.walSeq
	}
	return nil
}

// decodeWALPayload parses a frame payload into the statement's original
// NOW, SQL text and parameters. Type names resolve through reg.
func decodeWALPayload(reg *blade.Registry, rec []byte) (temporal.Chronon, string, map[string]types.Value, error) {
	if len(rec) < 8 {
		return 0, "", nil, fmt.Errorf("%w: short record", ErrWAL)
	}
	now := temporal.Chronon(binary.LittleEndian.Uint64(rec))
	rec = rec[8:]
	sql, rec, err := readString(rec)
	if err != nil {
		return 0, "", nil, fmt.Errorf("%w: %v", ErrWAL, err)
	}
	nParams, k := binary.Uvarint(rec)
	if k <= 0 {
		return 0, "", nil, fmt.Errorf("%w: param count", ErrWAL)
	}
	rec = rec[k:]
	if nParams > uint64(len(rec)) {
		return 0, "", nil, fmt.Errorf("%w: param count %d", ErrWAL, nParams)
	}
	var params map[string]types.Value
	if nParams > 0 {
		params = make(map[string]types.Value, nParams)
	}
	for range nParams {
		var name, tname string
		if name, rec, err = readString(rec); err != nil {
			return 0, "", nil, fmt.Errorf("%w: %v", ErrWAL, err)
		}
		if tname, rec, err = readString(rec); err != nil {
			return 0, "", nil, fmt.Errorf("%w: %v", ErrWAL, err)
		}
		t := types.TNull
		if tname != "" {
			var ok bool
			if t, ok = reg.LookupType(tname); !ok {
				return 0, "", nil, fmt.Errorf("%w: unknown type %s", ErrWAL, tname)
			}
		}
		var v types.Value
		if t.Kind == types.KindNull {
			if len(rec) < 1 {
				return 0, "", nil, fmt.Errorf("%w: null value", ErrWAL)
			}
			v, rec = types.NewNull(types.TNull), rec[1:]
		} else {
			if v, rec, err = types.DecodeValue(t, rec); err != nil {
				return 0, "", nil, fmt.Errorf("%w: %v", ErrWAL, err)
			}
		}
		params[name] = v
	}
	if len(rec) != 0 {
		return 0, "", nil, fmt.Errorf("%w: trailing bytes in record", ErrWAL)
	}
	return now, sql, params, nil
}

func (db *Database) replayRecord(sess *Session, rec []byte) error {
	now, sql, params, err := decodeWALPayload(db.reg, rec)
	if err != nil {
		return err
	}
	// Replay under the original NOW so NOW-relative semantics match.
	// Parsing goes through the session cache: a replica applying a
	// stream of repeated statements pays the parser once per shape.
	sess.nowOverride = &now
	stmt, err := sess.parseCached(sql)
	if err != nil {
		return fmt.Errorf("engine: wal replay of %q: %w", sql, err)
	}
	if _, err := sess.ExecStmt(stmt, params); err != nil {
		return fmt.Errorf("engine: wal replay of %q: %w", sql, err)
	}
	return nil
}
