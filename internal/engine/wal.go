package engine

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"tip/internal/sql/ast"
	"tip/internal/sql/parse"
	"tip/internal/temporal"
	"tip/internal/types"
)

// Statement-level write-ahead logging. Between snapshots, every
// successful state-changing statement (DDL, DML, transaction control)
// is appended to the log together with the NOW it executed under, so a
// restart can replay it with identical temporal semantics. Checkpoint
// writes a snapshot and truncates the log.
//
// The log is a redo log of statements, not of row changes: replay
// re-executes the SQL. A transaction left open at the end of the log
// (crash mid-transaction) is rolled back after replay. Records are
// flushed to the OS on every append; fsync is left to Checkpoint.
//
// Record layout (length-prefixed frame):
//
//	int64 now, str sql, uvarint nParams, (str name, str typeName, value)*

// wal is the open log file.
type wal struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
	// failed is the first append error, sticky: once an append fails
	// the log may end in a torn record, so no further records are
	// written — the file stays a consistent (replayable) prefix of the
	// in-memory history until Checkpoint truncates and heals it.
	failed error
}

// ErrWAL reports a malformed log.
var ErrWAL = errors.New("engine: corrupt WAL")

// ErrWALFailed reports that a statement applied in memory but could not
// be appended to the WAL. The statement's result is still returned to
// the caller; the log stops growing so it remains a consistent prefix.
// Checkpoint clears the condition (the snapshot captures the state the
// log no longer covers).
var ErrWALFailed = errors.New("engine: WAL append failed; statement applied but not logged")

// EnableWAL starts appending state-changing statements to path,
// creating the file if needed. Call ReplayWAL first when recovering.
func (db *Database) EnableWAL(path string) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("engine: wal: %w", err)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.wal != nil {
		_ = f.Close()
		return fmt.Errorf("engine: WAL already enabled")
	}
	db.wal = &wal{f: f, w: bufio.NewWriter(f)}
	return nil
}

// DisableWAL stops logging and closes the file.
func (db *Database) DisableWAL() error {
	db.mu.Lock()
	w := db.wal
	db.wal = nil
	db.mu.Unlock()
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	flushErr := w.failed
	if flushErr == nil {
		flushErr = w.w.Flush()
	}
	closeErr := w.f.Close()
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// Checkpoint writes a snapshot to snapshotPath, fsyncs and truncates
// the log: recovery now needs only the snapshot plus the (empty) log.
func (db *Database) Checkpoint(snapshotPath string) error {
	if err := db.Save(snapshotPath); err != nil {
		return err
	}
	db.mu.RLock()
	w := db.wal
	db.mu.RUnlock()
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	// A failed WAL may hold a poisoned buffered writer and a torn tail
	// on disk; the snapshot supersedes both, so skip the flush and let
	// the truncate below heal the log.
	if w.failed == nil {
		if err := w.w.Flush(); err != nil {
			return err
		}
	}
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("engine: checkpoint: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("engine: checkpoint: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("engine: checkpoint: %w", err)
	}
	w.w.Reset(w.f)
	w.failed = nil
	return nil
}

// loggable reports whether a statement changes database state and must
// be redone at recovery.
func loggable(stmt ast.Statement) bool {
	switch stmt.(type) {
	case *ast.CreateTable, *ast.DropTable, *ast.CreateIndex, *ast.DropIndex,
		*ast.Insert, *ast.Update, *ast.Delete,
		*ast.Begin, *ast.Commit, *ast.Rollback:
		return true
	default:
		return false
	}
}

// logStatement appends one executed statement to the WAL.
func (db *Database) logStatement(now temporal.Chronon, sql string, params map[string]types.Value) error {
	db.mu.RLock()
	w := db.wal
	db.mu.RUnlock()
	if w == nil {
		return nil
	}
	var buf []byte
	buf = binary.LittleEndian.AppendUint64(buf, uint64(now))
	buf = appendString(buf, sql)
	buf = binary.AppendUvarint(buf, uint64(len(params)))
	for name, v := range params {
		buf = appendString(buf, name)
		tname := ""
		if v.T != nil && v.T.Kind != types.KindNull {
			tname = v.T.Name
		}
		buf = appendString(buf, tname)
		buf = v.AppendBinary(buf)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	obsOn := db.obs.enabled()
	if w.failed != nil {
		if obsOn {
			db.obs.walFailures.Inc()
		}
		return fmt.Errorf("%w (first failure: %v)", ErrWALFailed, w.failed)
	}
	fail := func(err error) error {
		w.failed = err
		if obsOn {
			db.obs.walFailures.Inc()
		}
		return fmt.Errorf("%w: %v", ErrWALFailed, err)
	}
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(buf)))
	if _, err := w.w.Write(hdr[:n]); err != nil {
		return fail(err)
	}
	if _, err := w.w.Write(buf); err != nil {
		return fail(err)
	}
	if err := w.w.Flush(); err != nil {
		return fail(err)
	}
	if obsOn {
		db.obs.walAppends.Inc()
		db.obs.walBytes.Add(uint64(n + len(buf)))
	}
	return nil
}

// ReplayWAL re-executes the statements logged in path against this
// database (typically right after loading the matching snapshot). Each
// statement runs under the NOW it originally executed with. A
// transaction still open at the end of the log is rolled back. A
// truncated trailing record (torn write at crash) ends replay cleanly.
func (db *Database) ReplayWAL(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("engine: wal replay: %w", err)
	}
	sess := db.NewSession()
	defer func() {
		if sess.InTransaction() {
			_, _ = sess.ExecStmt(&ast.Rollback{}, nil)
		}
		sess.nowOverride = nil
	}()
	for len(data) > 0 {
		n, k := binary.Uvarint(data)
		if k <= 0 || uint64(len(data)-k) < n {
			return nil // torn tail: everything before it replayed
		}
		rec := data[k : k+int(n)]
		data = data[k+int(n):]
		if err := db.replayRecord(sess, rec); err != nil {
			return err
		}
	}
	return nil
}

func (db *Database) replayRecord(sess *Session, rec []byte) error {
	if len(rec) < 8 {
		return fmt.Errorf("%w: short record", ErrWAL)
	}
	now := temporal.Chronon(binary.LittleEndian.Uint64(rec))
	rec = rec[8:]
	sql, rec, err := readString(rec)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrWAL, err)
	}
	nParams, k := binary.Uvarint(rec)
	if k <= 0 {
		return fmt.Errorf("%w: param count", ErrWAL)
	}
	rec = rec[k:]
	var params map[string]types.Value
	if nParams > 0 {
		params = make(map[string]types.Value, nParams)
	}
	for range nParams {
		var name, tname string
		if name, rec, err = readString(rec); err != nil {
			return fmt.Errorf("%w: %v", ErrWAL, err)
		}
		if tname, rec, err = readString(rec); err != nil {
			return fmt.Errorf("%w: %v", ErrWAL, err)
		}
		t := types.TNull
		if tname != "" {
			var ok bool
			if t, ok = db.reg.LookupType(tname); !ok {
				return fmt.Errorf("%w: unknown type %s", ErrWAL, tname)
			}
		}
		var v types.Value
		if t.Kind == types.KindNull {
			if len(rec) < 1 {
				return fmt.Errorf("%w: null value", ErrWAL)
			}
			v, rec = types.NewNull(types.TNull), rec[1:]
		} else {
			if v, rec, err = types.DecodeValue(t, rec); err != nil {
				return fmt.Errorf("%w: %v", ErrWAL, err)
			}
		}
		params[name] = v
	}
	if len(rec) != 0 {
		return fmt.Errorf("%w: trailing bytes in record", ErrWAL)
	}
	// Replay under the original NOW so NOW-relative semantics match.
	sess.nowOverride = &now
	stmt, err := parse.Parse(sql)
	if err != nil {
		return fmt.Errorf("engine: wal replay of %q: %w", sql, err)
	}
	if _, err := sess.ExecStmt(stmt, params); err != nil {
		return fmt.Errorf("engine: wal replay of %q: %w", sql, err)
	}
	return nil
}
