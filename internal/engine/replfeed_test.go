package engine_test

// The WAL as a replication feed: bounded-range replay, live tail
// subscriptions with overrun cutoff, frame-stream reads and the
// flushed/synced gauges that report shipping progress.

import (
	"fmt"
	"path/filepath"
	"testing"

	"tip/internal/blade"
	"tip/internal/core"
	"tip/internal/engine"
	"tip/internal/temporal"
)

func freshDB(t *testing.T) *engine.Database {
	t.Helper()
	reg := blade.NewRegistry()
	if _, err := core.Register(reg); err != nil {
		t.Fatal(err)
	}
	db := engine.New(reg)
	db.SetClock(func() temporal.Chronon { return testNow })
	return db
}

func TestReplayWALRangeIsResumable(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "wal.log")
	_, s := newWALDB(t, wal)
	mustExec(t, s, `CREATE TABLE t (a INT)`) // seq 1
	for i := 1; i <= 4; i++ {                // seqs 2..5
		mustExec(t, s, fmt.Sprintf(`INSERT INTO t VALUES (%d)`, i))
	}

	// Replay only the first three frames...
	db2 := freshDB(t)
	if err := db2.ReplayWALRange(wal, 0, 3); err != nil {
		t.Fatal(err)
	}
	s2 := db2.NewSession()
	if got := count(t, s2, `SELECT COUNT(*) FROM t`); got != 2 {
		t.Fatalf("rows after partial replay = %d, want 2", got)
	}
	if got := db2.WALSeq(); got != 3 {
		t.Fatalf("WALSeq after partial replay = %d, want 3", got)
	}

	// ...then resume from where the partial replay stopped.
	if err := db2.ReplayWALRange(wal, db2.WALSeq(), ^uint64(0)); err != nil {
		t.Fatal(err)
	}
	if got := count(t, s2, `SELECT COUNT(*) FROM t`); got != 4 {
		t.Fatalf("rows after resumed replay = %d, want 4", got)
	}
	if got := db2.WALSeq(); got != 5 {
		t.Fatalf("WALSeq after resumed replay = %d, want 5", got)
	}
}

func TestReplayWALRangeBoundBelowLog(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "wal.log")
	_, s := newWALDB(t, wal)
	mustExec(t, s, `CREATE TABLE t (a INT)`)

	db2 := freshDB(t)
	if err := db2.ReplayWALRange(wal, 0, 0); err != nil {
		t.Fatal(err)
	}
	if got := db2.WALSeq(); got != 0 {
		t.Fatalf("WALSeq with upToSeq=0 = %d, want 0", got)
	}
}

func TestWALSeqGauges(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "wal.log")
	db, s := newWALDB(t, wal)
	mustExec(t, s, `CREATE TABLE t (a INT)`)
	mustExec(t, s, `INSERT INTO t VALUES (1)`)

	snap := db.Metrics().Snapshot()
	if got, ok := snap.Get("wal.flushed_seq"); !ok || got != 2 {
		t.Fatalf("wal.flushed_seq = %v (present=%v), want 2", got, ok)
	}
	if _, ok := snap.Get("wal.synced_seq"); !ok {
		t.Fatal("wal.synced_seq gauge missing")
	}
}

func TestSubscribeWALDeliversFrames(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "wal.log")
	db, s := newWALDB(t, wal)
	mustExec(t, s, `CREATE TABLE t (a INT)`) // before the subscription: not delivered

	sub, err := db.SubscribeWAL(8)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	mustExec(t, s, `INSERT INTO t VALUES (1)`)
	fr := <-sub.C
	if fr.Seq != 2 {
		t.Fatalf("live frame seq = %d, want 2", fr.Seq)
	}
	if _, _, err := engine.DecodeWALFrameBody(fr.Body); err != nil {
		t.Fatalf("live frame body does not decode: %v", err)
	}
}

func TestSubscribeWALOverrunCutsTheSubscriber(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "wal.log")
	db, s := newWALDB(t, wal)
	mustExec(t, s, `CREATE TABLE t (a INT)`)

	sub, err := db.SubscribeWAL(2)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	// Fill the buffer and overflow it without draining: the slow
	// subscriber must be cut, never the appender blocked.
	for i := 0; i < 4; i++ {
		mustExec(t, s, fmt.Sprintf(`INSERT INTO t VALUES (%d)`, i))
	}
	delivered := 0
	for range sub.C {
		delivered++
	}
	if delivered != 2 {
		t.Fatalf("delivered %d frames before the cut, want the 2 buffered", delivered)
	}
}

func TestReadWALFramesFromSeq(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "wal.log")
	_, s := newWALDB(t, wal)
	mustExec(t, s, `CREATE TABLE t (a INT)`)
	for i := 1; i <= 4; i++ {
		mustExec(t, s, fmt.Sprintf(`INSERT INTO t VALUES (%d)`, i))
	}

	var seqs []uint64
	err := engine.ReadWALFrames(wal, 2, func(fr engine.ReplFrame) error {
		if _, _, err := engine.DecodeWALFrameBody(fr.Body); err != nil {
			return err
		}
		seqs = append(seqs, fr.Seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{3, 4, 5}
	if len(seqs) != len(want) {
		t.Fatalf("frames after seq 2 = %v, want %v", seqs, want)
	}
	for i := range want {
		if seqs[i] != want[i] {
			t.Fatalf("frames after seq 2 = %v, want %v", seqs, want)
		}
	}
}

func TestReadWALFramesMissingFileIsEmpty(t *testing.T) {
	err := engine.ReadWALFrames(filepath.Join(t.TempDir(), "nope.log"), 0,
		func(engine.ReplFrame) error { t.Fatal("unexpected frame"); return nil })
	if err != nil {
		t.Fatalf("missing WAL should read as empty, got %v", err)
	}
}

func TestReadOnlyRejectsWrites(t *testing.T) {
	db, s := newDB(t)
	mustExec(t, s, `CREATE TABLE t (a INT)`)
	db.SetReadOnly(true)
	if _, err := s.Exec(`INSERT INTO t VALUES (1)`, nil); err == nil || err != engine.ErrReadOnly {
		t.Fatalf("write on read-only db: err = %v, want ErrReadOnly", err)
	}
	// Reads still work.
	if got := count(t, s, `SELECT COUNT(*) FROM t`); got != 0 {
		t.Fatalf("read on read-only db = %d", got)
	}
	// A replica session bypasses the gate: that is how the stream applies.
	rs := db.NewReplicaSession()
	if err := func() error {
		defer rs.Close()
		_, err := rs.Exec(`INSERT INTO t VALUES (1)`, nil)
		return err
	}(); err != nil {
		t.Fatalf("replica session write: %v", err)
	}
}
