package engine_test

import (
	"path/filepath"
	"strings"
	"testing"

	"tip/internal/blade"
	"tip/internal/core"
	"tip/internal/engine"
	"tip/internal/exec"
	"tip/internal/temporal"
)

var testNow = temporal.MustDate(1999, 11, 12)

func newDB(t *testing.T) (*engine.Database, *engine.Session) {
	t.Helper()
	reg := blade.NewRegistry()
	if _, err := core.Register(reg); err != nil {
		t.Fatal(err)
	}
	db := engine.New(reg)
	db.SetClock(func() temporal.Chronon { return testNow })
	return db, db.NewSession()
}

func mustExec(t *testing.T, s *engine.Session, sql string) *exec.Result {
	t.Helper()
	res, err := s.Exec(sql, nil)
	if err != nil {
		t.Fatalf("Exec(%s): %v", sql, err)
	}
	return res
}

func count(t *testing.T, s *engine.Session, sql string) int64 {
	t.Helper()
	res := mustExec(t, s, sql)
	if len(res.Rows) != 1 {
		t.Fatalf("count query returned %d rows", len(res.Rows))
	}
	return res.Rows[0][0].Int()
}

func TestCreateDropTable(t *testing.T) {
	_, s := newDB(t)
	mustExec(t, s, `CREATE TABLE t (a INT, b VARCHAR(10) NOT NULL)`)
	if _, err := s.Exec(`CREATE TABLE t (a INT)`, nil); err == nil {
		t.Error("duplicate CREATE TABLE should fail")
	}
	mustExec(t, s, `CREATE TABLE IF NOT EXISTS t (a INT)`)
	mustExec(t, s, `DROP TABLE t`)
	if _, err := s.Exec(`DROP TABLE t`, nil); err == nil {
		t.Error("DROP of missing table should fail")
	}
	mustExec(t, s, `DROP TABLE IF EXISTS t`)
	if _, err := s.Exec(`CREATE TABLE u (a NoSuchType)`, nil); err == nil {
		t.Error("unknown column type should fail")
	}
}

func TestInsertSelectBasics(t *testing.T) {
	_, s := newDB(t)
	mustExec(t, s, `CREATE TABLE t (a INT, b VARCHAR(10), c FLOAT)`)
	mustExec(t, s, `INSERT INTO t VALUES (1, 'one', 1.5), (2, 'two', 2.5), (3, 'three', 3.5)`)
	mustExec(t, s, `INSERT INTO t (b, a) VALUES ('four', 4)`)

	res := mustExec(t, s, `SELECT a, b, c FROM t ORDER BY a`)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[3][2].Format() != "NULL" {
		t.Errorf("unlisted column should be NULL, got %s", res.Rows[3][2].Format())
	}
	if got := count(t, s, `SELECT COUNT(*) FROM t WHERE a > 2`); got != 2 {
		t.Errorf("count = %d", got)
	}
	// NOT NULL enforcement.
	mustExec(t, s, `CREATE TABLE nn (a INT NOT NULL)`)
	if _, err := s.Exec(`INSERT INTO nn VALUES (NULL)`, nil); err == nil {
		t.Error("NULL into NOT NULL should fail")
	}
	// Arity check.
	if _, err := s.Exec(`INSERT INTO t VALUES (1)`, nil); err == nil {
		t.Error("wrong arity should fail")
	}
}

func TestInsertFromSelect(t *testing.T) {
	_, s := newDB(t)
	mustExec(t, s, `CREATE TABLE src (a INT)`)
	mustExec(t, s, `CREATE TABLE dst (a INT)`)
	mustExec(t, s, `INSERT INTO src VALUES (1), (2), (3)`)
	res := mustExec(t, s, `INSERT INTO dst SELECT a * 10 FROM src WHERE a >= 2`)
	if res.Affected != 2 {
		t.Fatalf("affected = %d", res.Affected)
	}
	if got := count(t, s, `SELECT SUM(a) FROM dst`); got != 50 {
		t.Errorf("sum = %d", got)
	}
}

func TestUpdateDelete(t *testing.T) {
	_, s := newDB(t)
	mustExec(t, s, `CREATE TABLE t (a INT, b VARCHAR(10))`)
	mustExec(t, s, `INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')`)
	res := mustExec(t, s, `UPDATE t SET b = 'updated', a = a + 100 WHERE a >= 2`)
	if res.Affected != 2 {
		t.Fatalf("update affected = %d", res.Affected)
	}
	if got := count(t, s, `SELECT COUNT(*) FROM t WHERE b = 'updated'`); got != 2 {
		t.Errorf("updated rows = %d", got)
	}
	// SET expressions see the old row values.
	if got := count(t, s, `SELECT COUNT(*) FROM t WHERE a = 102`); got != 1 {
		t.Errorf("a=102 rows = %d", got)
	}
	res = mustExec(t, s, `DELETE FROM t WHERE a > 100`)
	if res.Affected != 2 {
		t.Fatalf("delete affected = %d", res.Affected)
	}
	if got := count(t, s, `SELECT COUNT(*) FROM t`); got != 1 {
		t.Errorf("remaining = %d", got)
	}
}

func TestTransactionsRollback(t *testing.T) {
	_, s := newDB(t)
	mustExec(t, s, `CREATE TABLE t (a INT)`)
	mustExec(t, s, `INSERT INTO t VALUES (1), (2)`)

	mustExec(t, s, `BEGIN`)
	mustExec(t, s, `INSERT INTO t VALUES (3)`)
	mustExec(t, s, `UPDATE t SET a = 20 WHERE a = 2`)
	mustExec(t, s, `DELETE FROM t WHERE a = 1`)
	if got := count(t, s, `SELECT COUNT(*) FROM t`); got != 2 {
		t.Fatalf("mid-txn count = %d", got)
	}
	mustExec(t, s, `ROLLBACK`)

	res := mustExec(t, s, `SELECT a FROM t ORDER BY a`)
	if len(res.Rows) != 2 || res.Rows[0][0].Int() != 1 || res.Rows[1][0].Int() != 2 {
		t.Fatalf("rollback did not restore rows: %v", res.Rows)
	}

	// Commit keeps changes.
	mustExec(t, s, `BEGIN`)
	mustExec(t, s, `INSERT INTO t VALUES (3)`)
	mustExec(t, s, `COMMIT`)
	if got := count(t, s, `SELECT COUNT(*) FROM t`); got != 3 {
		t.Errorf("post-commit count = %d", got)
	}

	// Transaction state errors.
	if _, err := s.Exec(`COMMIT`, nil); err == nil {
		t.Error("COMMIT without BEGIN should fail")
	}
	if _, err := s.Exec(`ROLLBACK`, nil); err == nil {
		t.Error("ROLLBACK without BEGIN should fail")
	}
	mustExec(t, s, `BEGIN`)
	if _, err := s.Exec(`BEGIN`, nil); err == nil {
		t.Error("nested BEGIN should fail")
	}
	mustExec(t, s, `ROLLBACK`)
}

// TestTransactionTimeFixesNow checks that every statement of one
// transaction sees the same NOW (the transaction's begin time).
func TestTransactionTimeFixesNow(t *testing.T) {
	db, s := newDB(t)
	mustExec(t, s, `BEGIN`)
	inTxn := s.Now()
	db.SetClock(func() temporal.Chronon { return temporal.MustDate(2005, 1, 1) })
	if s.Now() != inTxn {
		t.Error("NOW changed inside a transaction")
	}
	mustExec(t, s, `COMMIT`)
	if s.Now() != temporal.MustDate(2005, 1, 1) {
		t.Error("NOW should track the clock outside a transaction")
	}
}

func TestRollbackRestoresIndexes(t *testing.T) {
	_, s := newDB(t)
	mustExec(t, s, `CREATE TABLE t (a INT, valid Element)`)
	mustExec(t, s, `INSERT INTO t VALUES (1, '{[1999-01-01, 1999-02-01]}')`)
	mustExec(t, s, `CREATE INDEX ta ON t (a)`)
	mustExec(t, s, `CREATE INDEX tv ON t (valid) USING PERIOD`)

	mustExec(t, s, `BEGIN`)
	mustExec(t, s, `INSERT INTO t VALUES (2, '{[1999-06-01, 1999-07-01]}')`)
	mustExec(t, s, `UPDATE t SET a = 10 WHERE a = 1`)
	mustExec(t, s, `ROLLBACK`)

	// Both index paths must still find exactly the original row.
	if got := count(t, s, `SELECT COUNT(*) FROM t WHERE a = 1`); got != 1 {
		t.Errorf("hash index after rollback: %d", got)
	}
	if got := count(t, s, `SELECT COUNT(*) FROM t WHERE a = 10`); got != 0 {
		t.Errorf("stale hash entry after rollback: %d", got)
	}
	if got := count(t, s, `SELECT COUNT(*) FROM t WHERE overlaps(valid, '{[1999-01-15, 1999-06-15]}')`); got != 1 {
		t.Errorf("period index after rollback: %d", got)
	}
}

func TestCreateIndexValidation(t *testing.T) {
	_, s := newDB(t)
	mustExec(t, s, `CREATE TABLE t (a INT, i Instant, valid Element)`)
	// NOW-dependent keys cannot be hash indexed.
	if _, err := s.Exec(`CREATE INDEX ti ON t (i)`, nil); err == nil {
		t.Error("hash index on Instant should fail")
	}
	// PERIOD index requires a temporal column.
	if _, err := s.Exec(`CREATE INDEX ta ON t (a) USING PERIOD`, nil); err == nil {
		t.Error("PERIOD index on INT should fail")
	}
	mustExec(t, s, `CREATE INDEX tv ON t (valid) USING PERIOD`)
	if _, err := s.Exec(`CREATE INDEX tv2 ON t (valid) USING PERIOD`, nil); err == nil {
		t.Error("duplicate period index on a column should fail")
	}
	mustExec(t, s, `DROP INDEX tv`)
	mustExec(t, s, `CREATE INDEX tv ON t (valid) USING PERIOD`)
}

func TestIndexEquivalence(t *testing.T) {
	// Queries must return identical results with and without indexes.
	_, plain := newDB(t)
	_, indexed := newDB(t)
	for _, s := range []*engine.Session{plain, indexed} {
		mustExec(t, s, `CREATE TABLE t (a INT, valid Element)`)
	}
	mustExec(t, indexed, `CREATE INDEX ta ON t (a)`)
	mustExec(t, indexed, `CREATE INDEX tv ON t (valid) USING PERIOD`)
	rows := []string{
		`(1, '{[1999-01-01, 1999-02-01]}')`,
		`(2, '{[1999-03-01, 1999-04-01], [1999-06-01, 1999-07-01]}')`,
		`(3, '{[1999-10-01, NOW]}')`,
		`(1, '{[1998-01-01, 1998-06-01]}')`,
	}
	for _, r := range rows {
		for _, s := range []*engine.Session{plain, indexed} {
			mustExec(t, s, `INSERT INTO t VALUES `+r)
		}
	}
	queries := []string{
		`SELECT COUNT(*) FROM t WHERE a = 1`,
		`SELECT COUNT(*) FROM t WHERE overlaps(valid, '{[1999-01-15, 1999-03-15]}')`,
		`SELECT COUNT(*) FROM t WHERE overlaps(valid, '[1999-11-01, 1999-11-30]')`,
		`SELECT COUNT(*) FROM t WHERE contains(valid, '1999-06-15'::Chronon)`,
	}
	for _, q := range queries {
		if a, b := count(t, plain, q), count(t, indexed, q); a != b {
			t.Errorf("%s: plain=%d indexed=%d", q, a, b)
		}
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snapshot.tipdb")

	db, s := newDB(t)
	mustExec(t, s, `CREATE TABLE p (name VARCHAR(20), dob Chronon, valid Element)`)
	mustExec(t, s, `INSERT INTO p VALUES ('a', '1970-01-01', '{[1999-01-01, NOW]}'),
		('b', '1980-06-15 12:30:00', '{[1998-01-01, 1998-06-01], [1999-02-01, 1999-03-01]}'),
		('c', NULL, NULL)`)
	mustExec(t, s, `CREATE INDEX pn ON p (name)`)
	mustExec(t, s, `CREATE INDEX pv ON p (valid) USING PERIOD`)
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}

	// Reload into a fresh engine with the same blades.
	reg := blade.NewRegistry()
	if _, err := core.Register(reg); err != nil {
		t.Fatal(err)
	}
	db2 := engine.New(reg)
	db2.SetClock(func() temporal.Chronon { return testNow })
	if err := db2.Load(path); err != nil {
		t.Fatal(err)
	}
	s2 := db2.NewSession()
	res := mustExec(t, s2, `SELECT name, dob, valid FROM p ORDER BY name`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if got := res.Rows[0][2].Format(); got != "{[1999-01-01, NOW]}" {
		t.Errorf("NOW-relative element not preserved: %q", got)
	}
	if !res.Rows[2][1].Null || !res.Rows[2][2].Null {
		t.Error("NULLs not preserved")
	}
	// Indexes were rebuilt.
	if got := count(t, s2, `SELECT COUNT(*) FROM p WHERE name = 'b'`); got != 1 {
		t.Errorf("rebuilt hash index: %d", got)
	}
	if got := count(t, s2, `SELECT COUNT(*) FROM p WHERE overlaps(valid, '[1999-02-15, 1999-02-20]')`); got != 2 {
		t.Errorf("rebuilt period index: %d", got)
	}
	// Loading into a non-empty database fails.
	if err := db2.Load(path); err == nil {
		t.Error("Load into non-empty database should fail")
	}
	// Corrupt file fails cleanly.
	if err := db.Load(filepath.Join(dir, "missing")); err == nil {
		t.Error("Load of missing file should fail")
	}
}

func TestShowTables(t *testing.T) {
	_, s := newDB(t)
	mustExec(t, s, `CREATE TABLE bbb (a INT)`)
	mustExec(t, s, `CREATE TABLE aaa (a INT)`)
	res := mustExec(t, s, `SHOW TABLES`)
	if len(res.Rows) != 2 || res.Rows[0][0].Str() != "aaa" || res.Rows[1][0].Str() != "bbb" {
		t.Errorf("SHOW TABLES = %v", res.Rows)
	}
}

func TestDescribe(t *testing.T) {
	_, s := newDB(t)
	mustExec(t, s, `CREATE TABLE t (a INT NOT NULL, valid Element)`)
	mustExec(t, s, `CREATE INDEX tv ON t (valid) USING PERIOD`)
	res := mustExec(t, s, `DESCRIBE t`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][1].Str() != "INT" || res.Rows[0][2].Str() != "NO" {
		t.Errorf("column a = %v", res.Rows[0])
	}
	if res.Rows[1][1].Str() != "Element" || res.Rows[1][3].Str() != "tv (period)" {
		t.Errorf("column valid = %v", res.Rows[1])
	}
	if _, err := s.Exec(`DESCRIBE missing`, nil); err == nil {
		t.Error("DESCRIBE of missing table should fail")
	}
}

func TestExecScript(t *testing.T) {
	_, s := newDB(t)
	res, err := s.ExecScript(`
		CREATE TABLE t (a INT);
		INSERT INTO t VALUES (1), (2);
		SELECT SUM(a) FROM t;`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 3 {
		t.Errorf("script result = %v", res.Rows)
	}
}

func TestAssignmentCoercion(t *testing.T) {
	_, s := newDB(t)
	mustExec(t, s, `CREATE TABLE t (c Chronon, e Element, f FLOAT)`)
	// String literals coerce to UDT columns; INT coerces to FLOAT;
	// Chronon values coerce to Element columns through the widening
	// casts.
	mustExec(t, s, `INSERT INTO t VALUES ('1999-01-01', '1999-06-01'::Chronon, 2)`)
	res := mustExec(t, s, `SELECT c, e, f FROM t`)
	if got := res.Rows[0][1].Format(); got != "{[1999-06-01, 1999-06-01]}" {
		t.Errorf("Chronon→Element coercion = %q", got)
	}
	if got := res.Rows[0][2].Format(); got != "2.0" {
		t.Errorf("INT→FLOAT coercion = %q", got)
	}
	// Incompatible assignment fails.
	if _, err := s.Exec(`INSERT INTO t VALUES (1.5, NULL, NULL)`, nil); err == nil {
		t.Error("FLOAT into Chronon should fail")
	}
}

func TestErrorsMentionContext(t *testing.T) {
	_, s := newDB(t)
	mustExec(t, s, `CREATE TABLE t (a INT)`)
	_, err := s.Exec(`SELECT b FROM t`, nil)
	if err == nil || !strings.Contains(err.Error(), "b") {
		t.Errorf("unknown column error = %v", err)
	}
	_, err = s.Exec(`SELECT * FROM missing`, nil)
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("unknown table error = %v", err)
	}
}
