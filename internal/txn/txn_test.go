package txn

import (
	"sync"
	"testing"

	"tip/internal/storage"
	"tip/internal/temporal"
	"tip/internal/types"
)

func row(v int64) storage.Row { return storage.Row{types.NewInt(v)} }

func TestManagerClockAndIDs(t *testing.T) {
	m := NewManager()
	fixed := temporal.MustDate(1999, 11, 12)
	m.SetClock(func() temporal.Chronon { return fixed })
	tx1 := m.Begin()
	tx2 := m.Begin()
	if tx1.ID == tx2.ID {
		t.Error("transaction ids must be unique")
	}
	if tx1.Time != fixed || tx2.Time != fixed {
		t.Error("transaction time should come from the clock")
	}
	if m.Now() != fixed {
		t.Error("Now should read the clock")
	}
}

// Regression: SetClock used to write a plain struct field, racing with
// sessions reading Now/Begin from other goroutines (caught by -race when
// the browser repinned NOW mid-query). The clock is now stored atomically.
func TestManagerClockConcurrent(t *testing.T) {
	m := NewManager()
	a := temporal.MustDate(1999, 1, 1)
	b := temporal.MustDate(2000, 1, 1)
	m.SetClock(func() temporal.Chronon { return a })
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := a
			if g%2 == 1 {
				c = b
			}
			for i := 0; i < 200; i++ {
				c := c
				m.SetClock(func() temporal.Chronon { return c })
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if now := m.Now(); now != a && now != b {
					t.Errorf("Now = %v, want one of the pinned clocks", now)
					return
				}
				if tx := m.Begin(); tx.Time != a && tx.Time != b {
					t.Errorf("Begin time = %v, want one of the pinned clocks", tx.Time)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// The zero Manager (no SetClock ever called) must still work: Now falls
// back to the wall clock.
func TestZeroManagerWallClock(t *testing.T) {
	var m Manager
	if m.Now() == 0 {
		t.Error("zero-manager Now should read the wall clock")
	}
	if tx := m.Begin(); tx.Time == 0 {
		t.Error("zero-manager Begin should stamp wall-clock time")
	}
}

func TestUndoOrderNewestFirst(t *testing.T) {
	tx := &Txn{}
	tx.Log(Entry{Op: OpInsert, RowID: 1})
	tx.Log(Entry{Op: OpDelete, RowID: 2})
	tx.Log(Entry{Op: OpUpdate, RowID: 3})
	if tx.Len() != 3 {
		t.Fatalf("len = %d", tx.Len())
	}
	entries := tx.UndoEntries()
	if entries[0].RowID != 3 || entries[1].RowID != 2 || entries[2].RowID != 1 {
		t.Errorf("undo order = %v", entries)
	}
}

func TestApplyUndo(t *testing.T) {
	// Apply runs against a slab builder in production (rollback opens a
	// writer per table); exercise the real thing.
	h := storage.NewVersion().NewBuilder(1, 1)
	id0 := h.Insert(row(10))

	// A "transaction": insert a row, update row 0, delete row 0... then
	// undo everything in reverse.
	tx := &Txn{}
	id1 := h.Insert(row(20))
	tx.Log(Entry{Op: OpInsert, RowID: id1})
	old, _ := h.Update(id0, row(11))
	tx.Log(Entry{Op: OpUpdate, RowID: id0, Old: old})
	old2, _ := h.Delete(id0)
	tx.Log(Entry{Op: OpDelete, RowID: id0, Old: old2})

	for _, e := range tx.UndoEntries() {
		if err := Apply(h, e); err != nil {
			t.Fatal(err)
		}
	}
	if h.Len() != 1 {
		t.Fatalf("len after undo = %d", h.Len())
	}
	r, ok := h.Get(id0)
	if !ok || r[0].Int() != 10 {
		t.Errorf("row 0 after undo = %v", r)
	}
	if _, ok := h.Get(id1); ok {
		t.Error("inserted row survived undo")
	}
}

func TestApplyErrors(t *testing.T) {
	h := storage.NewVersion().NewBuilder(1, 1)
	if err := Apply(h, Entry{Op: OpInsert, RowID: 5}); err == nil {
		t.Error("undo insert of missing row should fail")
	}
	if err := Apply(h, Entry{Op: OpUpdate, RowID: 5, Old: row(1)}); err == nil {
		t.Error("undo update of missing row should fail")
	}
	if err := Apply(h, Entry{Op: OpDelete, RowID: 5, Old: row(1)}); err == nil {
		t.Error("undo delete at invalid slot should fail")
	}
	if err := Apply(h, Entry{Op: Op(99)}); err == nil {
		t.Error("unknown op should fail")
	}
}
