package txn

import (
	"testing"

	"tip/internal/storage"
	"tip/internal/temporal"
	"tip/internal/types"
)

func row(v int64) storage.Row { return storage.Row{types.NewInt(v)} }

func TestManagerClockAndIDs(t *testing.T) {
	m := NewManager()
	fixed := temporal.MustDate(1999, 11, 12)
	m.SetClock(func() temporal.Chronon { return fixed })
	tx1 := m.Begin()
	tx2 := m.Begin()
	if tx1.ID == tx2.ID {
		t.Error("transaction ids must be unique")
	}
	if tx1.Time != fixed || tx2.Time != fixed {
		t.Error("transaction time should come from the clock")
	}
	if m.Now() != fixed {
		t.Error("Now should read the clock")
	}
}

func TestUndoOrderNewestFirst(t *testing.T) {
	tx := &Txn{}
	tx.Log(Entry{Op: OpInsert, RowID: 1})
	tx.Log(Entry{Op: OpDelete, RowID: 2})
	tx.Log(Entry{Op: OpUpdate, RowID: 3})
	if tx.Len() != 3 {
		t.Fatalf("len = %d", tx.Len())
	}
	entries := tx.UndoEntries()
	if entries[0].RowID != 3 || entries[1].RowID != 2 || entries[2].RowID != 1 {
		t.Errorf("undo order = %v", entries)
	}
}

func TestApplyUndo(t *testing.T) {
	h := storage.NewHeap()
	id0 := h.Insert(row(10))

	// A "transaction": insert a row, update row 0, delete row 0... then
	// undo everything in reverse.
	tx := &Txn{}
	id1 := h.Insert(row(20))
	tx.Log(Entry{Op: OpInsert, RowID: id1})
	old, _ := h.Update(id0, row(11))
	tx.Log(Entry{Op: OpUpdate, RowID: id0, Old: old})
	old2, _ := h.Delete(id0)
	tx.Log(Entry{Op: OpDelete, RowID: id0, Old: old2})

	for _, e := range tx.UndoEntries() {
		if err := Apply(h, e); err != nil {
			t.Fatal(err)
		}
	}
	if h.Len() != 1 {
		t.Fatalf("len after undo = %d", h.Len())
	}
	r, ok := h.Get(id0)
	if !ok || r[0].Int() != 10 {
		t.Errorf("row 0 after undo = %v", r)
	}
	if _, ok := h.Get(id1); ok {
		t.Error("inserted row survived undo")
	}
}

func TestApplyErrors(t *testing.T) {
	h := storage.NewHeap()
	if err := Apply(h, Entry{Op: OpInsert, RowID: 5}); err == nil {
		t.Error("undo insert of missing row should fail")
	}
	if err := Apply(h, Entry{Op: OpUpdate, RowID: 5, Old: row(1)}); err == nil {
		t.Error("undo update of missing row should fail")
	}
	if err := Apply(h, Entry{Op: OpDelete, RowID: 5, Old: row(1)}); err == nil {
		t.Error("undo delete at invalid slot should fail")
	}
	if err := Apply(h, Entry{Op: Op(99)}); err == nil {
		t.Error("unknown op should fail")
	}
}
