// Package txn provides the engine's transaction bookkeeping: transaction
// identity, the transaction time that interprets the special symbol NOW,
// and an undo log of row-level changes for rollback.
//
// The TIP semantics of NOW (after Clifford et al.) fix the interpretation
// of NOW-relative values to the *transaction* time: every statement within
// one transaction sees the same NOW, assigned when the transaction begins.
package txn

import (
	"fmt"
	"sync/atomic"
	"time"

	"tip/internal/storage"
	"tip/internal/temporal"
)

// Op is the kind of a logged change.
type Op int

// Logged change kinds.
const (
	OpInsert Op = iota
	OpDelete
	OpUpdate
)

// Entry records one row-level change for undo.
type Entry struct {
	Op    Op
	Table string
	RowID int
	// Old is the pre-change row for OpDelete and OpUpdate.
	Old storage.Row
}

// Txn is one open transaction.
type Txn struct {
	ID int64
	// Time is the transaction time: the value of NOW for every statement
	// in this transaction (unless the session overrides NOW).
	Time temporal.Chronon
	undo []Entry
}

// Log appends an undo entry.
func (t *Txn) Log(e Entry) { t.undo = append(t.undo, e) }

// UndoEntries returns the logged entries newest-first, the order rollback
// must apply them in.
func (t *Txn) UndoEntries() []Entry {
	out := make([]Entry, len(t.undo))
	for i, e := range t.undo {
		out[len(t.undo)-1-i] = e
	}
	return out
}

// Len returns the number of logged changes.
func (t *Txn) Len() int { return len(t.undo) }

// Manager allocates transactions. The zero Manager uses the wall clock;
// tests may pin the clock with SetClock. The clock is stored atomically
// so SetClock may race with concurrent sessions reading Now.
type Manager struct {
	nextID atomic.Int64
	clock  atomic.Pointer[func() temporal.Chronon]
}

// NewManager returns a manager reading the wall clock.
func NewManager() *Manager {
	m := &Manager{}
	m.SetClock(func() temporal.Chronon { return temporal.ChrononOf(time.Now()) })
	return m
}

// SetClock replaces the clock, for deterministic tests and the browser's
// what-if evaluation. Safe to call while other goroutines read Now.
func (m *Manager) SetClock(clock func() temporal.Chronon) { m.clock.Store(&clock) }

// Now reads the manager's clock.
func (m *Manager) Now() temporal.Chronon {
	if c := m.clock.Load(); c != nil {
		return (*c)()
	}
	return temporal.ChrononOf(time.Now())
}

// Begin opens a transaction stamped with the current clock reading.
func (m *Manager) Begin() *Txn {
	return &Txn{ID: m.nextID.Add(1), Time: m.Now()}
}

// Store is the row mutation surface rollback applies undo entries
// against — in the engine, a table writer building the next slab
// version of the table the entry names.
type Store interface {
	Delete(id int) (storage.Row, error)
	InsertAt(id int, r storage.Row) error
	Update(id int, r storage.Row) (storage.Row, error)
}

// Apply undoes one entry against the store of its table. The caller
// resolves the table and is responsible for index maintenance.
func Apply(st Store, e Entry) error {
	switch e.Op {
	case OpInsert:
		// Undo an insert by deleting the row.
		if _, err := st.Delete(e.RowID); err != nil {
			return fmt.Errorf("txn: undo insert: %w", err)
		}
	case OpDelete:
		// Undo a delete by reviving the row.
		if err := st.InsertAt(e.RowID, e.Old); err != nil {
			return fmt.Errorf("txn: undo delete: %w", err)
		}
	case OpUpdate:
		// Undo an update by restoring the old content.
		if _, err := st.Update(e.RowID, e.Old); err != nil {
			return fmt.Errorf("txn: undo update: %w", err)
		}
	default:
		return fmt.Errorf("txn: unknown op %d", e.Op)
	}
	return nil
}
