// Package layered implements the stratum architecture the paper's §5
// contrasts TIP with: temporal support layered *on top of* a conventional
// SQL engine (the TimeDB/Tiger approach) rather than built into it.
//
// The stratum stores a temporal table flat: the Element timestamp becomes
// one row per period with BIGINT (vstart, vend) columns holding closed
// second intervals, and temporal operations are *translated* into
// standard SQL over that encoding. The translations are the classic ones
// from the literature — in particular coalescing via the
// Böhlen/Snodgrass self-join with nested NOT EXISTS — and they are
// deliberately what a real stratum would emit, so experiments E2/E3/E5
// can measure the paper's argument: the generated SQL is large, deeply
// nested, and hard for the backend to execute efficiently, while the
// in-engine TIP routines stay short and fast.
//
// NOW-relative ends are encoded with a "forever" sentinel (the maximum
// chronon), the standard stratum trick; unlike TIP the encoding cannot
// represent general NOW-relative instants or sets of periods per value.
package layered

import (
	"fmt"
	"strings"

	"tip/internal/engine"
	"tip/internal/exec"
	"tip/internal/temporal"
	"tip/internal/types"
)

// Forever is the sentinel second count a stratum uses for a NOW-relative
// (open) period end.
var Forever = int64(temporal.MaxChronon)

// Stratum translates temporal operations into plain SQL for one engine
// session.
type Stratum struct {
	sess *engine.Session
}

// New wraps an engine session.
func New(sess *engine.Session) *Stratum { return &Stratum{sess: sess} }

// Session exposes the underlying session (for direct queries in tests
// and benchmarks).
func (st *Stratum) Session() *engine.Session { return st.sess }

// CreateTemporalTable creates the flat encoding of a temporal table:
// the given data columns plus (vstart, vend) BIGINT columns.
func (st *Stratum) CreateTemporalTable(name string, cols string) error {
	ddl := fmt.Sprintf("CREATE TABLE %s (%s, vstart BIGINT NOT NULL, vend BIGINT NOT NULL)", name, cols)
	_, err := st.sess.Exec(ddl, nil)
	return err
}

// Insert stores one logical tuple: the data values once per period of
// its element timestamp. NOW-relative starts clamp to the minimum
// chronon, NOW-relative ends to Forever.
func (st *Stratum) Insert(table string, columns []string, data []types.Value, valid temporal.Element) error {
	colList := strings.Join(columns, ", ")
	sql := fmt.Sprintf("INSERT INTO %s (%s, vstart, vend) VALUES (%s, :vstart, :vend)",
		table, colList, placeholders(columns))
	params := make(map[string]types.Value, len(data)+2)
	for i, c := range columns {
		params["p"+c] = data[i]
	}
	for _, p := range valid.Periods() {
		lo := int64(temporal.MinChronon)
		if c, ok := p.Start.Chronon(); ok {
			lo = int64(c)
		}
		hi := Forever
		if c, ok := p.End.Chronon(); ok {
			hi = int64(c)
		}
		params["vstart"] = types.NewInt(lo)
		params["vend"] = types.NewInt(hi)
		if _, err := st.sess.Exec(sql, params); err != nil {
			return err
		}
	}
	return nil
}

func placeholders(columns []string) string {
	out := make([]string, len(columns))
	for i, c := range columns {
		out[i] = ":p" + c
	}
	return strings.Join(out, ", ")
}

// CoalesceSQL generates the classic stratum translation of temporal
// coalescing over one grouping column: the Böhlen/Snodgrass self-join
// that finds maximal periods with doubly nested NOT EXISTS subqueries.
// Adjacent closed intervals (vend + 1 = next vstart) merge, matching
// TIP's discrete-chronon semantics.
//
// This is the query shape the paper's §5 warns about: a stratum must
// emit it because the backend has no temporal routines; TIP instead
// evaluates length(group_union(valid)) natively.
func CoalesceSQL(table, key string) string {
	return fmt.Sprintf(`
SELECT DISTINCT f.%[2]s AS %[2]s, f.vstart AS vstart, l.vend AS vend
FROM %[1]s f, %[1]s l
WHERE f.%[2]s = l.%[2]s AND f.vstart <= l.vend
AND NOT EXISTS (
    SELECT 1 FROM %[1]s m
    WHERE m.%[2]s = f.%[2]s
      AND f.vstart < m.vstart AND m.vstart <= l.vend + 1
      AND NOT EXISTS (
          SELECT 1 FROM %[1]s m2
          WHERE m2.%[2]s = f.%[2]s
            AND m2.vstart < m.vstart AND m.vstart <= m2.vend + 1))
AND NOT EXISTS (
    SELECT 1 FROM %[1]s m3
    WHERE m3.%[2]s = f.%[2]s
      AND ((m3.vstart < f.vstart AND f.vstart <= m3.vend + 1)
        OR (m3.vstart <= l.vend + 1 AND l.vend < m3.vend)))`,
		table, key)
}

// TotalDurationSQL generates the stratum translation of "total coalesced
// duration per key" — the paper's Q4 — by summing the lengths of the
// coalesced periods.
func TotalDurationSQL(table, key string) string {
	return fmt.Sprintf(`
SELECT c.%[2]s, SUM(c.vend - c.vstart) AS total
FROM (%[1]s) c
GROUP BY c.%[2]s`, CoalesceSQL(table, key), key)
}

// OverlapJoinSQL generates the stratum translation of the paper's Q3
// temporal self-join: which pairs of rows (filtered by the two
// predicates) overlap in time, and on which interval. Each overlapping
// period pair yields one output row with the clipped interval — a
// stratum returns period fragments, not coalesced Elements, so a second
// coalescing pass would be needed for true set semantics.
func OverlapJoinSQL(table, key, pred1, pred2 string) string {
	return fmt.Sprintf(`
SELECT p1.%[2]s AS %[2]s,
       greatest(p1.vstart, p2.vstart) AS ostart,
       least(p1.vend, p2.vend) AS oend
FROM %[1]s p1, %[1]s p2
WHERE %[3]s AND %[4]s
  AND p1.%[2]s = p2.%[2]s
  AND p1.vstart <= p2.vend AND p2.vstart <= p1.vend`,
		table, key, pred1, pred2)
}

// WindowSQL generates a temporal selection: rows whose period overlaps
// [lo, hi] (closed seconds).
func WindowSQL(table string, lo, hi int64) string {
	return fmt.Sprintf("SELECT * FROM %s WHERE vstart <= %d AND %d <= vend", table, hi, lo)
}

// Coalesce runs the generated coalescing query.
func (st *Stratum) Coalesce(table, key string) (*exec.Result, error) {
	return st.sess.Exec(CoalesceSQL(table, key), nil)
}

// TotalDuration runs the generated total-duration query.
func (st *Stratum) TotalDuration(table, key string) (*exec.Result, error) {
	return st.sess.Exec(TotalDurationSQL(table, key), nil)
}

// OverlapJoin runs the generated overlap self-join.
func (st *Stratum) OverlapJoin(table, key, pred1, pred2 string) (*exec.Result, error) {
	return st.sess.Exec(OverlapJoinSQL(table, key, pred1, pred2), nil)
}

// TIPPlanVariant names one executor configuration for the in-engine
// side of the §5 comparison. The planner picks the coalesce strategy by
// cost, so a variant steers it indirectly: UseHashIndex creates a hash
// index on the grouping column (giving the planner a distinct-key
// estimate that favours hash aggregation), and Vectorized=false forces
// the generic row-at-a-time aggregation path.
type TIPPlanVariant struct {
	Name         string
	Vectorized   bool
	UseHashIndex bool
}

// CoalescePlanVariants returns the executor configurations the E2
// comparison runs the TIP side under: the default vectorized sort-merge
// coalesce, hash-aggregation coalesce (hash index on the grouping
// column), and the pre-batching row-at-a-time aggregation.
func CoalescePlanVariants() []TIPPlanVariant {
	return []TIPPlanVariant{
		{Name: "sort-merge", Vectorized: true},
		{Name: "hash-agg", Vectorized: true, UseHashIndex: true},
		{Name: "row-at-a-time", Vectorized: false},
	}
}

// Apply configures a TIP session for the variant. Vectorization is a
// process-wide executor switch; callers should restore the default
// (exec.SetVectorized(true)) when done.
func (v TIPPlanVariant) Apply(sess *engine.Session, table, key string) error {
	exec.SetVectorized(v.Vectorized)
	if v.UseHashIndex {
		ddl := fmt.Sprintf("CREATE INDEX %s_%s_hash ON %s (%s)", table, key, table, key)
		if _, err := sess.Exec(ddl, nil); err != nil {
			return err
		}
	}
	return nil
}

// Complexity measures the size of a generated query for experiment E5:
// character count, rough token count, number of table references (FROM
// items) and subquery nesting depth.
type Complexity struct {
	Chars     int
	Tokens    int
	TableRefs int
	Depth     int
}

// MeasureSQL computes the complexity metrics of a SQL string.
func MeasureSQL(sql string) Complexity {
	c := Complexity{Chars: len(sql)}
	c.Tokens = len(strings.Fields(sql))
	upper := strings.ToUpper(stripLiterals(sql))
	// Table references: each FROM introduces one plus one per
	// top-level comma inside its clause; counting FROM keywords and
	// commas between identifiers is close enough for a size metric, so
	// count FROM occurrences and the aliases after them.
	c.TableRefs = strings.Count(upper, " FROM ") + strings.Count(upper, "\nFROM ")
	for _, frag := range strings.Split(upper, "FROM ")[1:] {
		clause := frag
		for _, stop := range []string{"\n", " WHERE ", " GROUP ", " ORDER ", ")"} {
			if i := strings.Index(clause, stop); i >= 0 {
				clause = clause[:i]
			}
		}
		c.TableRefs += strings.Count(clause, ",")
	}
	depth, maxDepth := 0, 0
	for _, r := range stripLiterals(sql) {
		switch r {
		case '(':
			depth++
			if depth > maxDepth {
				maxDepth = depth
			}
		case ')':
			depth--
		}
	}
	c.Depth = maxDepth
	return c
}

// stripLiterals blanks out single-quoted string literals so their
// contents (commas, parentheses) do not distort the structural metrics.
func stripLiterals(sql string) string {
	out := []byte(sql)
	in := false
	for i := 0; i < len(out); i++ {
		switch {
		case out[i] == '\'':
			in = !in
		case in:
			out[i] = '_'
		}
	}
	return string(out)
}
