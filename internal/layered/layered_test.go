package layered_test

import (
	"fmt"
	"math/rand"
	"testing"

	"tip/internal/blade"
	"tip/internal/core"
	"tip/internal/engine"
	"tip/internal/exec"
	"tip/internal/layered"
	"tip/internal/temporal"
	"tip/internal/types"
)

var testNow = temporal.MustDate(1999, 11, 12)

// newSessions builds two independent databases: a TIP-enabled one and a
// plain one for the stratum (a real stratum sits on a backend without
// temporal support).
func newSessions(t *testing.T) (*engine.Session, *layered.Stratum, *core.Blade) {
	t.Helper()
	reg := blade.NewRegistry()
	b, err := core.Register(reg)
	if err != nil {
		t.Fatal(err)
	}
	tipDB := engine.New(reg)
	tipDB.SetClock(func() temporal.Chronon { return testNow })
	flatDB := engine.New(blade.NewRegistry())
	flatDB.SetClock(func() temporal.Chronon { return testNow })
	return tipDB.NewSession(), layered.New(flatDB.NewSession()), b
}

// day n is n days after 1999-01-01 at midnight.
func day(n int) temporal.Chronon {
	return temporal.MustDate(1999, 1, 1) + temporal.Chronon(n*86400)
}

// randomPatientData builds per-patient period sets, loading both the TIP
// table and the flat stratum table with identical data.
func randomPatientData(t *testing.T, tip *engine.Session, st *layered.Stratum, b *core.Blade,
	patients, periodsPer int, seed int64) map[string]temporal.Element {
	t.Helper()
	if _, err := tip.Exec(`CREATE TABLE rx (patient VARCHAR(10), valid Element)`, nil); err != nil {
		t.Fatal(err)
	}
	if err := st.CreateTemporalTable("rx", "patient VARCHAR(10)"); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(seed))
	truth := make(map[string]temporal.Element)
	for p := 0; p < patients; p++ {
		name := fmt.Sprintf("p%02d", p)
		var all []temporal.Period
		for k := 0; k < periodsPer; k++ {
			lo := r.Intn(300)
			hi := lo + 1 + r.Intn(60)
			pd := temporal.MustPeriod(day(lo), day(hi))
			all = append(all, pd)
			el := pd.Element()
			if _, err := tip.Exec(`INSERT INTO rx VALUES (:p, :v)`, map[string]types.Value{
				"p": types.NewString(name), "v": b.ElementValue(el)}); err != nil {
				t.Fatal(err)
			}
			if err := st.Insert("rx", []string{"patient"}, []types.Value{types.NewString(name)}, el); err != nil {
				t.Fatal(err)
			}
		}
		e, err := temporal.MakeElement(all...)
		if err != nil {
			t.Fatal(err)
		}
		truth[name] = e
	}
	return truth
}

// TestCoalesceAgreesWithTIP is the core stratum correctness check: the
// classic layered coalescing SQL and TIP's group_union must produce the
// same coalesced periods.
func TestCoalesceAgreesWithTIP(t *testing.T) {
	tip, st, b := newSessions(t)
	truth := randomPatientData(t, tip, st, b, 6, 5, 42)

	// Layered result.
	res, err := st.Coalesce("rx", "patient")
	if err != nil {
		t.Fatal(err)
	}
	layeredGot := make(map[string][]temporal.Interval)
	for _, row := range res.Rows {
		p := row[0].Str()
		layeredGot[p] = append(layeredGot[p], temporal.Interval{
			Lo: temporal.Chronon(row[1].Int()), Hi: temporal.Chronon(row[2].Int())})
	}
	for p, want := range truth {
		got := layeredGot[p]
		wantIvs := want.Bind(testNow)
		if len(got) != len(wantIvs) {
			t.Errorf("%s: layered %d periods, truth %d", p, len(got), len(wantIvs))
			continue
		}
		// Order within the layered result is unspecified; match by set.
		seen := make(map[temporal.Interval]bool)
		for _, iv := range got {
			seen[iv] = true
		}
		for _, iv := range wantIvs {
			if !seen[iv] {
				t.Errorf("%s: missing coalesced period %v", p, iv)
			}
		}
	}

	// TIP result via group_union, against the same truth.
	res, err = tip.Exec(`SELECT patient, group_union(valid) FROM rx GROUP BY patient`, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		p := row[0].Str()
		got := row[1].Obj().(temporal.Element)
		if !got.Equal(truth[p], testNow) {
			t.Errorf("%s: TIP %s, truth %s", p, got, truth[p])
		}
	}
}

// TestTotalDurationAgrees compares the full Q4 pipeline: layered
// total-duration SQL vs TIP's length(group_union(valid)).
func TestTotalDurationAgrees(t *testing.T) {
	tip, st, b := newSessions(t)
	_ = randomPatientData(t, tip, st, b, 5, 4, 7)

	layeredRes, err := st.TotalDuration("rx", "patient")
	if err != nil {
		t.Fatal(err)
	}
	layeredTotal := make(map[string]int64)
	for _, row := range layeredRes.Rows {
		layeredTotal[row[0].Str()] = row[1].Int()
	}

	tipRes, err := tip.Exec(`SELECT patient, length(group_union(valid)) FROM rx GROUP BY patient`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tipRes.Rows) != len(layeredRes.Rows) {
		t.Fatalf("group counts differ: tip %d, layered %d", len(tipRes.Rows), len(layeredRes.Rows))
	}
	for _, row := range tipRes.Rows {
		p := row[0].Str()
		tipSpan := row[1].Obj().(temporal.Span)
		if int64(tipSpan) != layeredTotal[p] {
			t.Errorf("%s: tip %d seconds, layered %d", p, int64(tipSpan), layeredTotal[p])
		}
	}
}

// TestOverlapJoinAgrees compares the Q3 temporal self-join: the layered
// fragment join, re-coalesced, must denote the same chronons as TIP's
// intersect.
func TestOverlapJoinAgrees(t *testing.T) {
	tip, st, b := newSessions(t)
	if _, err := tip.Exec(`CREATE TABLE rx (patient VARCHAR(10), drug VARCHAR(10), valid Element)`, nil); err != nil {
		t.Fatal(err)
	}
	if err := st.CreateTemporalTable("rx", "patient VARCHAR(10), drug VARCHAR(10)"); err != nil {
		t.Fatal(err)
	}
	ins := func(p, d string, el temporal.Element) {
		t.Helper()
		if _, err := tip.Exec(`INSERT INTO rx VALUES (:p, :d, :v)`, map[string]types.Value{
			"p": types.NewString(p), "d": types.NewString(d), "v": b.ElementValue(el)}); err != nil {
			t.Fatal(err)
		}
		if err := st.Insert("rx", []string{"patient", "drug"},
			[]types.Value{types.NewString(p), types.NewString(d)}, el); err != nil {
			t.Fatal(err)
		}
	}
	mkEl := func(ps ...temporal.Period) temporal.Element { return temporal.MustElement(ps...) }
	ins("alice", "A", mkEl(temporal.MustPeriod(day(0), day(30)), temporal.MustPeriod(day(60), day(90))))
	ins("alice", "B", mkEl(temporal.MustPeriod(day(20), day(70))))
	ins("bob", "A", mkEl(temporal.MustPeriod(day(0), day(10))))
	ins("bob", "B", mkEl(temporal.MustPeriod(day(40), day(50))))

	tipRes, err := tip.Exec(`
		SELECT p1.patient, intersect(p1.valid, p2.valid)
		FROM rx p1, rx p2
		WHERE p1.drug = 'A' AND p2.drug = 'B' AND p1.patient = p2.patient
		AND overlaps(p1.valid, p2.valid)`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tipRes.Rows) != 1 || tipRes.Rows[0][0].Str() != "alice" {
		t.Fatalf("tip rows = %v", tipRes.Rows)
	}
	tipEl := tipRes.Rows[0][1].Obj().(temporal.Element)

	layeredRes, err := st.OverlapJoin("rx", "patient", "p1.drug = 'A'", "p2.drug = 'B'")
	if err != nil {
		t.Fatal(err)
	}
	var frags []temporal.Period
	for _, row := range layeredRes.Rows {
		if row[0].Str() != "alice" {
			t.Errorf("unexpected overlap row for %s", row[0].Str())
			continue
		}
		frags = append(frags, temporal.MustPeriod(
			temporal.Chronon(row[1].Int()), temporal.Chronon(row[2].Int())))
	}
	// The stratum returns fragments; coalesce them to compare sets.
	layeredEl, err := temporal.MakeElement(frags...)
	if err != nil {
		t.Fatal(err)
	}
	if !layeredEl.Equal(tipEl, testNow) {
		t.Errorf("layered %s, tip %s", layeredEl, tipEl)
	}
}

func TestWindowSQL(t *testing.T) {
	_, st, b := newSessions(t)
	if err := st.CreateTemporalTable("ev", "name VARCHAR(10)"); err != nil {
		t.Fatal(err)
	}
	el := temporal.MustPeriod(day(10), day(20)).Element()
	if err := st.Insert("ev", []string{"name"}, []types.Value{types.NewString("x")}, el); err != nil {
		t.Fatal(err)
	}
	_ = b
	res, err := st.Session().Exec(layered.WindowSQL("ev", int64(day(15)), int64(day(16))), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("window hit = %d", len(res.Rows))
	}
	res, err = st.Session().Exec(layered.WindowSQL("ev", int64(day(30)), int64(day(40))), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("window miss = %d", len(res.Rows))
	}
}

// TestNowRelativeEncoding checks the stratum's Forever sentinel.
func TestNowRelativeEncoding(t *testing.T) {
	_, st, _ := newSessions(t)
	if err := st.CreateTemporalTable("ev", "name VARCHAR(10)"); err != nil {
		t.Fatal(err)
	}
	el, err := temporal.ParseElement("{[1999-10-01, NOW]}")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Insert("ev", []string{"name"}, []types.Value{types.NewString("open")}, el); err != nil {
		t.Fatal(err)
	}
	res, err := st.Session().Exec(`SELECT vend FROM ev`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != layered.Forever {
		t.Errorf("open end = %d, want Forever sentinel", res.Rows[0][0].Int())
	}
}

// TestComplexityMetrics verifies E5's measurements: the generated
// coalescing SQL is much larger and deeper than the TIP equivalent.
func TestComplexityMetrics(t *testing.T) {
	layeredSQL := layered.TotalDurationSQL("rx", "patient")
	tipSQL := `SELECT patient, length(group_union(valid)) FROM rx GROUP BY patient`
	lc := layered.MeasureSQL(layeredSQL)
	tc := layered.MeasureSQL(tipSQL)
	if lc.Chars <= 2*tc.Chars {
		t.Errorf("layered SQL should be much longer: %d vs %d chars", lc.Chars, tc.Chars)
	}
	if lc.Depth < 2 || tc.Depth >= lc.Depth {
		t.Errorf("layered nesting %d should exceed TIP nesting %d", lc.Depth, tc.Depth)
	}
	if lc.TableRefs < 5 {
		t.Errorf("layered table refs = %d, want ≥ 5", lc.TableRefs)
	}
	if tc.TableRefs != 1 {
		t.Errorf("tip table refs = %d", tc.TableRefs)
	}
}

// TestCoalescePlanVariants runs TIP's group_union under every coalesce
// plan variant (sort-merge, hash-agg via a hash index on the grouping
// column, row-at-a-time) and checks each against the kernel truth — the
// agreement leg of the E2 plan-variant comparison.
func TestCoalescePlanVariants(t *testing.T) {
	defer exec.SetVectorized(true)
	for _, v := range layered.CoalescePlanVariants() {
		tip, _, b := newSessions(t)
		truth := randomPatientData2(t, tip, b, 8, 6, int64(101))
		if err := v.Apply(tip, "rx", "patient"); err != nil {
			t.Fatalf("%s: Apply: %v", v.Name, err)
		}
		res, err := tip.Exec(`SELECT patient, group_union(valid) FROM rx GROUP BY patient`, nil)
		if err != nil {
			t.Fatalf("%s: %v", v.Name, err)
		}
		if len(res.Rows) != len(truth) {
			t.Fatalf("%s: %d groups, want %d", v.Name, len(res.Rows), len(truth))
		}
		for _, row := range res.Rows {
			p := row[0].Str()
			got := row[1].Obj().(temporal.Element)
			if !got.Equal(truth[p], testNow) {
				t.Errorf("%s: %s: got %s, truth %s", v.Name, p, got, truth[p])
			}
		}
	}
}

// randomPatientData2 is randomPatientData without the stratum side, for
// TIP-only variant checks.
func randomPatientData2(t *testing.T, tip *engine.Session, b *core.Blade,
	patients, periodsPer int, seed int64) map[string]temporal.Element {
	t.Helper()
	if _, err := tip.Exec(`CREATE TABLE rx (patient VARCHAR(10), valid Element)`, nil); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(seed))
	truth := make(map[string]temporal.Element)
	for p := 0; p < patients; p++ {
		name := fmt.Sprintf("p%02d", p)
		var all []temporal.Period
		for k := 0; k < periodsPer; k++ {
			lo := r.Intn(300)
			hi := lo + 1 + r.Intn(60)
			pd := temporal.MustPeriod(day(lo), day(hi))
			all = append(all, pd)
			if _, err := tip.Exec(`INSERT INTO rx VALUES (:p, :v)`, map[string]types.Value{
				"p": types.NewString(name), "v": b.ElementValue(pd.Element())}); err != nil {
				t.Fatal(err)
			}
		}
		e, err := temporal.MakeElement(all...)
		if err != nil {
			t.Fatal(err)
		}
		truth[name] = e
	}
	return truth
}
