package catalog

import (
	"testing"

	"tip/internal/types"
)

func meta(t *testing.T, name string, cols ...string) *TableMeta {
	t.Helper()
	cs := make([]Column, len(cols))
	for i, c := range cols {
		cs[i] = Column{Name: c, Type: types.TInt}
	}
	m, err := NewTableMeta(name, cs)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTableMeta(t *testing.T) {
	m := meta(t, "t", "a", "B")
	if i, ok := m.ColumnIndex("a"); !ok || i != 0 {
		t.Error("column a")
	}
	// Case-insensitive.
	if i, ok := m.ColumnIndex("b"); !ok || i != 1 {
		t.Error("column b case-insensitive")
	}
	if _, ok := m.ColumnIndex("c"); ok {
		t.Error("missing column resolved")
	}
	if _, err := NewTableMeta("bad", nil); err == nil {
		t.Error("no columns should fail")
	}
	if _, err := NewTableMeta("bad", []Column{{Name: "x"}, {Name: "X"}}); err == nil {
		t.Error("duplicate columns should fail")
	}
}

func TestCatalogTables(t *testing.T) {
	c := New()
	if err := c.CreateTable(meta(t, "Emp", "a")); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable(meta(t, "emp", "a")); err == nil {
		t.Error("case-insensitive duplicate should fail")
	}
	if _, ok := c.Table("EMP"); !ok {
		t.Error("case-insensitive lookup failed")
	}
	if err := c.CreateTable(meta(t, "dept", "a")); err != nil {
		t.Fatal(err)
	}
	names := c.TableNames()
	if len(names) != 2 || names[0] != "Emp" || names[1] != "dept" {
		t.Errorf("names = %v", names)
	}
	if err := c.DropTable("emp"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropTable("emp"); err == nil {
		t.Error("double drop should fail")
	}
}

func TestCatalogIndexes(t *testing.T) {
	c := New()
	if err := c.CreateTable(meta(t, "t", "a", "b")); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateIndex(&IndexMeta{Name: "ia", Table: "t", Column: "a", Kind: HashIndex}); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateIndex(&IndexMeta{Name: "ia", Table: "t", Column: "b"}); err == nil {
		t.Error("duplicate index name should fail")
	}
	if err := c.CreateIndex(&IndexMeta{Name: "ix", Table: "missing", Column: "a"}); err == nil {
		t.Error("index on missing table should fail")
	}
	if err := c.CreateIndex(&IndexMeta{Name: "ix", Table: "t", Column: "zzz"}); err == nil {
		t.Error("index on missing column should fail")
	}
	if err := c.CreateIndex(&IndexMeta{Name: "ib", Table: "t", Column: "b", Kind: PeriodIndex}); err != nil {
		t.Fatal(err)
	}
	idxs := c.TableIndexes("T")
	if len(idxs) != 2 || idxs[0].Name != "ia" || idxs[1].Name != "ib" {
		t.Errorf("indexes = %v", idxs)
	}
	if _, ok := c.Index("IA"); !ok {
		t.Error("case-insensitive index lookup failed")
	}
	// Dropping the table drops its indexes.
	if err := c.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Index("ia"); ok {
		t.Error("index survived table drop")
	}
	if err := c.DropIndex("ia"); err == nil {
		t.Error("dropping missing index should fail")
	}
}
