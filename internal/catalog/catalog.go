// Package catalog maintains the engine's schema metadata: tables, their
// columns (with blade-resolved types), and secondary indexes. The catalog
// is type-registry-agnostic — column types are interned *types.Type
// pointers handed in by the engine after blade resolution.
package catalog

import (
	"fmt"
	"sort"
	"strings"

	"tip/internal/types"
)

// Column describes one table column.
type Column struct {
	Name    string
	Type    *types.Type
	NotNull bool
}

// IndexKind distinguishes index implementations.
type IndexKind int

// Index kinds: hash for equality, period for temporal overlap search.
const (
	HashIndex IndexKind = iota
	PeriodIndex
)

// IndexMeta describes one secondary index.
type IndexMeta struct {
	Name   string
	Table  string
	Column string
	Kind   IndexKind
}

// TableMeta describes one table.
type TableMeta struct {
	Name    string
	Columns []Column
	colPos  map[string]int
}

// NewTableMeta builds table metadata, validating column name uniqueness.
func NewTableMeta(name string, cols []Column) (*TableMeta, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("catalog: table %s has no columns", name)
	}
	m := &TableMeta{Name: name, Columns: cols, colPos: make(map[string]int, len(cols))}
	for i, c := range cols {
		key := strings.ToLower(c.Name)
		if _, dup := m.colPos[key]; dup {
			return nil, fmt.Errorf("catalog: duplicate column %s in table %s", c.Name, name)
		}
		m.colPos[key] = i
	}
	return m, nil
}

// ColumnIndex returns the position of the named column (case-insensitive).
func (m *TableMeta) ColumnIndex(name string) (int, bool) {
	i, ok := m.colPos[strings.ToLower(name)]
	return i, ok
}

// Catalog is the schema registry.
type Catalog struct {
	tables  map[string]*TableMeta
	indexes map[string]*IndexMeta
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables:  make(map[string]*TableMeta),
		indexes: make(map[string]*IndexMeta),
	}
}

// CreateTable registers a table.
func (c *Catalog) CreateTable(m *TableMeta) error {
	key := strings.ToLower(m.Name)
	if _, ok := c.tables[key]; ok {
		return fmt.Errorf("catalog: table %s already exists", m.Name)
	}
	c.tables[key] = m
	return nil
}

// DropTable removes a table and its indexes.
func (c *Catalog) DropTable(name string) error {
	key := strings.ToLower(name)
	if _, ok := c.tables[key]; !ok {
		return fmt.Errorf("catalog: no table %s", name)
	}
	delete(c.tables, key)
	for iname, im := range c.indexes {
		if strings.EqualFold(im.Table, name) {
			delete(c.indexes, iname)
		}
	}
	return nil
}

// Table resolves a table by name (case-insensitive).
func (c *Catalog) Table(name string) (*TableMeta, bool) {
	m, ok := c.tables[strings.ToLower(name)]
	return m, ok
}

// TableNames returns all table names, sorted.
func (c *Catalog) TableNames() []string {
	out := make([]string, 0, len(c.tables))
	for _, m := range c.tables {
		out = append(out, m.Name)
	}
	sort.Strings(out)
	return out
}

// CreateIndex registers index metadata after validating the target.
func (c *Catalog) CreateIndex(im *IndexMeta) error {
	key := strings.ToLower(im.Name)
	if _, ok := c.indexes[key]; ok {
		return fmt.Errorf("catalog: index %s already exists", im.Name)
	}
	tm, ok := c.Table(im.Table)
	if !ok {
		return fmt.Errorf("catalog: no table %s", im.Table)
	}
	if _, ok := tm.ColumnIndex(im.Column); !ok {
		return fmt.Errorf("catalog: no column %s in table %s", im.Column, im.Table)
	}
	c.indexes[key] = im
	return nil
}

// DropIndex removes index metadata.
func (c *Catalog) DropIndex(name string) error {
	key := strings.ToLower(name)
	if _, ok := c.indexes[key]; !ok {
		return fmt.Errorf("catalog: no index %s", name)
	}
	delete(c.indexes, key)
	return nil
}

// Index resolves an index by name.
func (c *Catalog) Index(name string) (*IndexMeta, bool) {
	im, ok := c.indexes[strings.ToLower(name)]
	return im, ok
}

// TableIndexes returns the indexes on the given table, sorted by name.
func (c *Catalog) TableIndexes(table string) []*IndexMeta {
	var out []*IndexMeta
	for _, im := range c.indexes {
		if strings.EqualFold(im.Table, table) {
			out = append(out, im)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
