package storage

import (
	"testing"

	"tip/internal/types"
)

func row(vals ...int64) Row {
	r := make(Row, len(vals))
	for i, v := range vals {
		r[i] = types.NewInt(v)
	}
	return r
}

func TestHeapInsertGetDelete(t *testing.T) {
	h := NewHeap()
	id1 := h.Insert(row(1))
	id2 := h.Insert(row(2))
	if h.Len() != 2 {
		t.Fatalf("len = %d", h.Len())
	}
	r, ok := h.Get(id1)
	if !ok || r[0].Int() != 1 {
		t.Error("Get after insert")
	}
	old, err := h.Delete(id1)
	if err != nil || old[0].Int() != 1 {
		t.Errorf("Delete = %v, %v", old, err)
	}
	if _, ok := h.Get(id1); ok {
		t.Error("Get after delete")
	}
	if _, err := h.Delete(id1); err == nil {
		t.Error("double delete should fail")
	}
	if h.Len() != 1 {
		t.Errorf("len after delete = %d", h.Len())
	}
	// id2 unaffected.
	if r, ok := h.Get(id2); !ok || r[0].Int() != 2 {
		t.Error("sibling row disturbed")
	}
	// Out of range.
	if _, ok := h.Get(-1); ok {
		t.Error("negative id")
	}
	if _, ok := h.Get(99); ok {
		t.Error("out-of-range id")
	}
}

func TestHeapUpdate(t *testing.T) {
	h := NewHeap()
	id := h.Insert(row(1))
	old, err := h.Update(id, row(10))
	if err != nil || old[0].Int() != 1 {
		t.Fatalf("Update = %v, %v", old, err)
	}
	r, _ := h.Get(id)
	if r[0].Int() != 10 {
		t.Error("update not applied")
	}
	if _, err := h.Update(99, row(1)); err == nil {
		t.Error("update of missing row should fail")
	}
}

func TestHeapInsertAt(t *testing.T) {
	h := NewHeap()
	id := h.Insert(row(1))
	if err := h.InsertAt(id, row(2)); err == nil {
		t.Error("InsertAt on live slot should fail")
	}
	if _, err := h.Delete(id); err != nil {
		t.Fatal(err)
	}
	if err := h.InsertAt(id, row(2)); err != nil {
		t.Fatal(err)
	}
	r, ok := h.Get(id)
	if !ok || r[0].Int() != 2 {
		t.Error("revived row wrong")
	}
	if err := h.InsertAt(99, row(1)); err == nil {
		t.Error("InsertAt out of range should fail")
	}
}

func TestHeapScanOrderAndEarlyStop(t *testing.T) {
	h := NewHeap()
	for i := int64(0); i < 10; i++ {
		h.Insert(row(i))
	}
	_, _ = h.Delete(3)
	var seen []int64
	h.Scan(func(_ int, r Row) bool {
		seen = append(seen, r[0].Int())
		return len(seen) < 5
	})
	if len(seen) != 5 {
		t.Fatalf("early stop failed: %v", seen)
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] <= seen[i-1] {
			t.Error("scan out of id order")
		}
	}
	for _, v := range seen {
		if v == 3 {
			t.Error("deleted row visited")
		}
	}
}

func TestHeapCompact(t *testing.T) {
	h := NewHeap()
	for i := int64(0); i < 10; i++ {
		h.Insert(row(i))
	}
	for _, id := range []int{0, 2, 4, 6, 8} {
		if _, err := h.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	h.Compact()
	if h.Len() != 5 || h.Capacity() != 5 {
		t.Errorf("after compact: len=%d cap=%d", h.Len(), h.Capacity())
	}
	var vals []int64
	h.Scan(func(_ int, r Row) bool {
		vals = append(vals, r[0].Int())
		return true
	})
	want := []int64{1, 3, 5, 7, 9}
	for i, v := range want {
		if vals[i] != v {
			t.Errorf("compacted rows = %v", vals)
			break
		}
	}
	// Compact on a fully live heap is a no-op.
	h.Compact()
	if h.Len() != 5 {
		t.Error("double compact changed data")
	}
}
