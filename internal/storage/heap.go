// Package storage implements the engine's row store: an in-memory heap of
// rows per table with stable row ids, tombstone deletion, and a binary
// snapshot format for persistence. Concurrency control is the engine's
// responsibility (it serialises writers and admits concurrent readers);
// the heap itself is not safe for concurrent mutation.
package storage

import (
	"fmt"

	"tip/internal/types"
)

// Row is one stored tuple.
type Row = []types.Value

// Heap stores the rows of one table. Row ids are positions in the rows
// slice; deleted rows leave tombstones so ids stay stable within a
// snapshot lifetime (undo logging depends on this). Compact reclaims
// tombstones.
type Heap struct {
	rows []Row
	live []bool
	n    int // live count
}

// NewHeap returns an empty heap.
func NewHeap() *Heap { return &Heap{} }

// Len returns the number of live rows.
func (h *Heap) Len() int { return h.n }

// Capacity returns the number of row slots including tombstones.
func (h *Heap) Capacity() int { return len(h.rows) }

// Insert appends a row and returns its id.
func (h *Heap) Insert(r Row) int {
	h.rows = append(h.rows, r)
	h.live = append(h.live, true)
	h.n++
	return len(h.rows) - 1
}

// InsertAt revives a specific row id with the given content — used only
// by transaction rollback to undo a delete. The slot must be a tombstone.
func (h *Heap) InsertAt(id int, r Row) error {
	if id < 0 || id >= len(h.rows) {
		return fmt.Errorf("storage: row id %d out of range", id)
	}
	if h.live[id] {
		return fmt.Errorf("storage: row id %d is live", id)
	}
	h.rows[id] = r
	h.live[id] = true
	h.n++
	return nil
}

// Get returns the row with the given id.
func (h *Heap) Get(id int) (Row, bool) {
	if id < 0 || id >= len(h.rows) || !h.live[id] {
		return nil, false
	}
	return h.rows[id], true
}

// Delete tombstones a row, returning its former content.
func (h *Heap) Delete(id int) (Row, error) {
	if id < 0 || id >= len(h.rows) || !h.live[id] {
		return nil, fmt.Errorf("storage: no row %d", id)
	}
	old := h.rows[id]
	h.rows[id] = nil
	h.live[id] = false
	h.n--
	return old, nil
}

// Update replaces a row's content, returning the former content.
func (h *Heap) Update(id int, r Row) (Row, error) {
	if id < 0 || id >= len(h.rows) || !h.live[id] {
		return nil, fmt.Errorf("storage: no row %d", id)
	}
	old := h.rows[id]
	h.rows[id] = r
	return old, nil
}

// Scan visits every live row in id order until yield returns false.
func (h *Heap) Scan(yield func(id int, r Row) bool) {
	for id, ok := range h.live {
		if ok && !yield(id, h.rows[id]) {
			return
		}
	}
}

// Compact drops tombstones, renumbering rows. It must only be called
// outside any transaction (row ids recorded in undo logs become invalid).
func (h *Heap) Compact() {
	if h.n == len(h.rows) {
		return
	}
	rows := make([]Row, 0, h.n)
	for id, ok := range h.live {
		if ok {
			rows = append(rows, h.rows[id])
		}
	}
	h.rows = rows
	h.live = make([]bool, len(rows))
	for i := range h.live {
		h.live[i] = true
	}
}
