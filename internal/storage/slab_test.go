package storage

import (
	"testing"

	"tip/internal/types"
)

func row(vals ...int64) Row {
	r := make(Row, len(vals))
	for i, v := range vals {
		r[i] = types.NewInt(v)
	}
	return r
}

// commit1 runs one single-statement "writer" against the latest
// version: seq advances by one and, with no open transactions, the
// horizon equals the new seq.
func commit1(v *Version, f func(b *Builder)) *Version {
	seq := v.Seq() + 1
	b := v.NewBuilder(seq, seq)
	f(b)
	return b.Commit()
}

func TestSlabInsertGetDelete(t *testing.T) {
	var id1, id2 int
	v := commit1(NewVersion(), func(b *Builder) {
		id1 = b.Insert(row(1))
		id2 = b.Insert(row(2))
	})
	if v.Len() != 2 {
		t.Fatalf("len = %d", v.Len())
	}
	r, ok := v.Get(id1)
	if !ok || r[0].Int() != 1 {
		t.Error("Get after insert")
	}
	v = commit1(v, func(b *Builder) {
		old, err := b.Delete(id1)
		if err != nil || old[0].Int() != 1 {
			t.Errorf("Delete = %v, %v", old, err)
		}
		if _, err := b.Delete(id1); err == nil {
			t.Error("double delete should fail")
		}
	})
	if _, ok := v.Get(id1); ok {
		t.Error("Get after delete")
	}
	if v.Len() != 1 {
		t.Errorf("len after delete = %d", v.Len())
	}
	if r, ok := v.Get(id2); !ok || r[0].Int() != 2 {
		t.Error("sibling row disturbed")
	}
	if _, ok := v.Get(-1); ok {
		t.Error("negative id")
	}
	if _, ok := v.Get(99); ok {
		t.Error("out-of-range id")
	}
}

func TestSlabUpdate(t *testing.T) {
	var id int
	v := commit1(NewVersion(), func(b *Builder) {
		id = b.Insert(row(1))
	})
	v = commit1(v, func(b *Builder) {
		old, err := b.Update(id, row(10))
		if err != nil || old[0].Int() != 1 {
			t.Fatalf("Update = %v, %v", old, err)
		}
		if _, err := b.Update(99, row(1)); err == nil {
			t.Error("update of missing row should fail")
		}
	})
	r, _ := v.Get(id)
	if r[0].Int() != 10 {
		t.Error("update not applied")
	}
}

func TestSlabInsertAt(t *testing.T) {
	var id int
	v := commit1(NewVersion(), func(b *Builder) {
		id = b.Insert(row(1))
		if err := b.InsertAt(id, row(2)); err == nil {
			t.Error("InsertAt on live slot should fail")
		}
	})
	v = commit1(v, func(b *Builder) {
		if _, err := b.Delete(id); err != nil {
			t.Fatal(err)
		}
	})
	v = commit1(v, func(b *Builder) {
		if err := b.InsertAt(id, row(2)); err != nil {
			t.Fatal(err)
		}
		if err := b.InsertAt(99, row(1)); err == nil {
			t.Error("InsertAt out of range should fail")
		}
	})
	r, ok := v.Get(id)
	if !ok || r[0].Int() != 2 {
		t.Error("revived row wrong")
	}
}

func TestSlabScanOrderAndEarlyStop(t *testing.T) {
	v := commit1(NewVersion(), func(b *Builder) {
		for i := int64(0); i < 10; i++ {
			b.Insert(row(i))
		}
		if _, err := b.Delete(3); err != nil {
			t.Fatal(err)
		}
	})
	var seen []int64
	v.Scan(func(_ int, r Row) bool {
		seen = append(seen, r[0].Int())
		return len(seen) < 5
	})
	if len(seen) != 5 {
		t.Fatalf("early stop failed: %v", seen)
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] <= seen[i-1] {
			t.Error("scan out of id order")
		}
	}
	for _, x := range seen {
		if x == 3 {
			t.Error("deleted row visited")
		}
	}
}

// TestSlabChurnBounded is the regression test for the old
// Heap.Compact tombstone leak: a delete/insert churn loop must reuse
// slots once the transaction horizon passes, keeping capacity bounded
// rather than growing one slot per churn round.
func TestSlabChurnBounded(t *testing.T) {
	v := commit1(NewVersion(), func(b *Builder) {
		for i := int64(0); i < 100; i++ {
			b.Insert(row(i))
		}
	})
	for round := 0; round < 1000; round++ {
		v = commit1(v, func(b *Builder) {
			var victim int = -1
			b.Scan(func(id int, _ Row) bool {
				victim = id
				return false
			})
			if _, err := b.Delete(victim); err != nil {
				t.Fatal(err)
			}
		})
		v = commit1(v, func(b *Builder) {
			b.Insert(row(int64(round)))
		})
	}
	if v.Len() != 100 {
		t.Fatalf("len after churn = %d", v.Len())
	}
	// Each round's tombstone is behind the horizon by the time the
	// next round inserts, so capacity may exceed the live count by at
	// most a round's worth of slack, not the 1000 rounds of churn.
	if v.Capacity() > 110 {
		t.Fatalf("capacity grew without bound: cap=%d live=%d", v.Capacity(), v.Len())
	}
}

// TestSlabHorizonBlocksReuse pins a transaction horizon below the
// freeing sequence and checks the slot is not reused until the horizon
// passes it — undo logs address rows by slot id, so premature reuse
// would break rollback.
func TestSlabHorizonBlocksReuse(t *testing.T) {
	var id int
	v := commit1(NewVersion(), func(b *Builder) {
		id = b.Insert(row(1))
	})
	v = commit1(v, func(b *Builder) { // seq 2 frees the slot
		if _, err := b.Delete(id); err != nil {
			t.Fatal(err)
		}
	})
	// A transaction open since seq 1 pins horizon=1: no reuse.
	b := v.NewBuilder(3, 1)
	if got := b.Insert(row(2)); got == id {
		t.Fatal("slot reused under an open transaction horizon")
	}
	v2 := b.Commit()
	// With the transaction gone the horizon passes the free stamp.
	b = v2.NewBuilder(4, 4)
	if got := b.Insert(row(3)); got != id {
		t.Fatalf("slot not reused after horizon passed: got %d want %d", got, id)
	}
}

// TestSlabStaleFreeEntry is the regression test for the stale
// free-list entry bug: a slot freed at seq d, revived by rollback, and
// freed again at seq n leaves the old {id, d} entry queued. An insert
// whose horizon has passed d but not n must not honor the stale entry —
// the newer death's transaction is still open, and its rollback will
// InsertAt the slot, which has to find it still dead.
func TestSlabStaleFreeEntry(t *testing.T) {
	var id int
	v := commit1(NewVersion(), func(b *Builder) {
		id = b.Insert(row(1))
	})
	v = commit1(v, func(b *Builder) { // seq 2: first death, queues {id, 2}
		if _, err := b.Delete(id); err != nil {
			t.Fatal(err)
		}
	})
	v = commit1(v, func(b *Builder) { // seq 3: rollback revives the slot
		if err := b.InsertAt(id, row(1)); err != nil {
			t.Fatal(err)
		}
	})
	v = commit1(v, func(b *Builder) { // seq 4: second death, queues {id, 4}
		if _, err := b.Delete(id); err != nil {
			t.Fatal(err)
		}
	})
	// A transaction open since seq 4 pins horizon=4: the stale {id, 2}
	// entry is poppable but must be recognised as stale, not reused.
	b := v.NewBuilder(5, 4)
	if got := b.Insert(row(9)); got == id {
		t.Fatal("stale free entry handed out a slot whose latest death is inside the horizon")
	}
	v = b.Commit()
	// The open transaction's rollback still finds its slot dead.
	b = v.NewBuilder(6, 4)
	if err := b.InsertAt(id, row(1)); err != nil {
		t.Fatalf("rollback InsertAt after stale-entry insert: %v", err)
	}
	v = b.Commit()
	if r, ok := v.Get(id); !ok || r[0].Int() != 1 {
		t.Fatalf("revived slot = %v, %v", r, ok)
	}
	// Once the second death's stamp falls behind the horizon, its own
	// entry (not the stale one) hands the slot out again.
	v = commit1(v, func(b *Builder) { // seq 7: third death, queues {id, 7}
		if _, err := b.Delete(id); err != nil {
			t.Fatal(err)
		}
	})
	b = v.NewBuilder(8, 8)
	if got := b.Insert(row(2)); got != id {
		t.Fatalf("slot not reused after horizon passed its latest death: got %d want %d", got, id)
	}
}

// TestSlabSnapshotImmutable checks a pinned version is untouched by
// every kind of successor mutation, including slot reuse and tail
// appends into the shared chunk.
func TestSlabSnapshotImmutable(t *testing.T) {
	v1 := commit1(NewVersion(), func(b *Builder) {
		for i := int64(0); i < 10; i++ {
			b.Insert(row(i))
		}
	})
	v := commit1(v1, func(b *Builder) {
		if _, err := b.Delete(2); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Update(3, row(300)); err != nil {
			t.Fatal(err)
		}
		b.Insert(row(100)) // tail append into the shared chunk
	})
	v = commit1(v, func(b *Builder) {
		b.Insert(row(200)) // reuses slot 2
	})
	if got, _ := v.Get(3); got[0].Int() != 300 {
		t.Error("successor missing update")
	}
	if v.Len() != 11 {
		t.Errorf("successor len = %d", v.Len())
	}
	if v.Capacity() != 11 {
		t.Errorf("successor capacity = %d (freed slot not reused)", v.Capacity())
	}
	// The pinned snapshot still sees the original world.
	if v1.Len() != 10 || v1.Capacity() != 10 {
		t.Fatalf("snapshot counts changed: len=%d cap=%d", v1.Len(), v1.Capacity())
	}
	for i := int64(0); i < 10; i++ {
		r, ok := v1.Get(int(i))
		if !ok || r[0].Int() != i {
			t.Fatalf("snapshot row %d = %v, %v", i, r, ok)
		}
	}
	if _, ok := v1.Get(10); ok {
		t.Error("snapshot sees successor's tail append")
	}
	var n int
	v1.Scan(func(_ int, _ Row) bool { n++; return true })
	if n != 10 {
		t.Errorf("snapshot scan visited %d rows", n)
	}
}

// TestSlabDiscard drops a builder without committing and checks the
// base version is unaffected even after in-place tail appends.
func TestSlabDiscard(t *testing.T) {
	v := commit1(NewVersion(), func(b *Builder) {
		b.Insert(row(1))
	})
	b := v.NewBuilder(2, 2)
	b.Insert(row(2))
	if _, err := b.Delete(0); err != nil {
		t.Fatal(err)
	}
	// Discard: builder dropped without Commit.
	if v.Len() != 1 || v.Capacity() != 1 {
		t.Fatalf("base changed after discard: len=%d cap=%d", v.Len(), v.Capacity())
	}
	if r, ok := v.Get(0); !ok || r[0].Int() != 1 {
		t.Error("base row changed after discard")
	}
	// A fresh builder over the same base works normally.
	v2 := commit1(v, func(b *Builder) {
		b.Insert(row(3))
	})
	if r, ok := v2.Get(1); !ok || r[0].Int() != 3 {
		t.Error("post-discard insert wrong")
	}
}

func TestSlabChunkBoundary(t *testing.T) {
	const n = chunkSize*2 + 7
	v := commit1(NewVersion(), func(b *Builder) {
		for i := int64(0); i < n; i++ {
			b.Insert(row(i))
		}
	})
	if v.Len() != n || v.Capacity() != n {
		t.Fatalf("len=%d cap=%d", v.Len(), v.Capacity())
	}
	for _, id := range []int{0, chunkSize - 1, chunkSize, 2*chunkSize - 1, 2 * chunkSize, n - 1} {
		r, ok := v.Get(id)
		if !ok || r[0].Int() != int64(id) {
			t.Fatalf("row %d = %v, %v", id, r, ok)
		}
	}
	var count int
	v.Scan(func(id int, r Row) bool {
		if r[0].Int() != int64(id) {
			t.Fatalf("scan row %d = %d", id, r[0].Int())
		}
		count++
		return true
	})
	if count != n {
		t.Fatalf("scan visited %d", count)
	}
}
