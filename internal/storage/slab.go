// Package storage implements the engine's row store. Since the MVCC
// refactor a table's rows live in a chain of immutable slab versions:
// each committed writer statement publishes a new Version, and readers
// pin one Version for the duration of a statement, never blocking on
// (or being blocked by) writers. Superseded versions are reclaimed by
// the Go garbage collector once the last reader snapshot drops them —
// versions hold no pointers to their successors or predecessors, only
// shared chunks.
//
// Copy-on-write is per chunk of chunkSize row slots: a writer that
// touches a slot of a published chunk copies just that chunk, while
// appends fill the shared tail chunk in place — slots at or beyond a
// published version's slot bound are invisible to every reader of that
// version, so in-place tail writes race with nothing.
//
// Row ids are slot positions and stay stable across versions; deletes
// tombstone the slot and queue it on a FIFO free list stamped with the
// deleting version's sequence. A later insert may reuse the slot only
// once the stamp falls behind the caller-supplied horizon (the minimum
// sequence any open transaction started at), because undo logs address
// rows by slot id and rollback must find its slot still dead. This
// folds the old Heap.Compact tombstone reclamation — which nothing ever
// called in production — into the normal write path, keeping capacity
// bounded under delete/insert churn.
package storage

import (
	"fmt"

	"tip/internal/types"
)

// Row is one stored tuple. Rows are immutable once stored: writers
// replace whole rows rather than mutating them in place, so a row
// reached through any version may be read without synchronisation.
type Row = []types.Value

// chunkSize is the number of row slots per slab chunk — the
// copy-on-write grain.
const chunkSize = 256

type chunk struct {
	rows [chunkSize]Row
	live [chunkSize]bool
	// freed stamps each slot with the sequence of its most recent
	// death. A free-list entry is only honored when its stamp still
	// matches: a slot revived by rollback and later deleted again gets
	// a fresh entry under the new stamp, and the stale old entry —
	// whose stamp may already be behind the horizon — must not hand
	// the slot out while the newer death's transaction is still open.
	freed [chunkSize]uint64
}

// freeSlot records a tombstoned slot and the sequence of the version
// that freed it.
type freeSlot struct {
	id  int
	seq uint64
}

// Version is one immutable snapshot of a table's rows. All methods are
// safe for concurrent use by any number of readers while writers build
// successor versions.
type Version struct {
	seq    uint64
	chunks []*chunk
	slots  int // row slots visible in this version
	n      int // live rows
	free   []freeSlot
}

// NewVersion returns an empty version with sequence zero.
func NewVersion() *Version { return &Version{} }

// Seq returns the sequence of the writer that published this version.
func (v *Version) Seq() uint64 { return v.seq }

// Len returns the number of live rows.
func (v *Version) Len() int { return v.n }

// Capacity returns the number of row slots including tombstones.
func (v *Version) Capacity() int { return v.slots }

// Get returns the row with the given id.
func (v *Version) Get(id int) (Row, bool) {
	if id < 0 || id >= v.slots {
		return nil, false
	}
	c := v.chunks[id/chunkSize]
	if !c.live[id%chunkSize] {
		return nil, false
	}
	return c.rows[id%chunkSize], true
}

// Scan visits every live row in id order until yield returns false.
func (v *Version) Scan(yield func(id int, r Row) bool) {
	for ci, c := range v.chunks {
		base := ci * chunkSize
		end := v.slots - base
		if end > chunkSize {
			end = chunkSize
		}
		for off := 0; off < end; off++ {
			if c.live[off] && !yield(base+off, c.rows[off]) {
				return
			}
		}
	}
}

// Builder mutates a copy-on-write successor of a base version. A
// builder must only be used by the one writer goroutine that holds the
// table's write lock; Commit publishes the new version, and dropping a
// builder without Commit discards every change (published chunks were
// never mutated in visible slots).
type Builder struct {
	base    *Version
	seq     uint64
	horizon uint64
	chunks  []*chunk
	shared  bool   // chunks aliases base.chunks' backing array
	owned   []bool // when !shared: chunks[i] is builder-local and freely mutable
	slots   int
	n       int
	popped  int        // free entries consumed from base.free
	pushes  []freeSlot // slots freed by this builder
}

// NewBuilder starts a successor of v with the given version sequence.
// horizon is the oldest sequence any open transaction started at (or
// seq itself when none are open): free slots stamped before it may be
// reused.
//
// The builder starts out aliasing v's chunk-pointer slice rather than
// copying it — a pure-append statement (the INSERT hot path) then costs
// O(1) instead of O(table size). Appending a tail chunk may write the
// shared backing array past v's length, which no reader of v (or of any
// older version sharing the backing) ever indexes; replacing a chunk at
// an index a published version CAN see first privatizes the slice
// (see mutable).
func (v *Version) NewBuilder(seq, horizon uint64) *Builder {
	return &Builder{
		base:    v,
		seq:     seq,
		horizon: horizon,
		chunks:  v.chunks,
		shared:  true,
		slots:   v.slots,
		n:       v.n,
	}
}

// privatize unshares the chunk-pointer slice so entries below the
// published bound may be replaced. Tail chunks this builder already
// appended are builder-local and stay freely mutable.
func (b *Builder) privatize() {
	chunks := append([]*chunk(nil), b.chunks...)
	owned := make([]bool, len(chunks))
	for i := len(b.base.chunks); i < len(chunks); i++ {
		owned[i] = true
	}
	b.chunks, b.owned, b.shared = chunks, owned, false
}

// mutable returns chunk ci as a builder-local chunk, copying a shared
// published chunk on first touch. ci == len(chunks) allocates the next
// tail chunk.
func (b *Builder) mutable(ci int) *chunk {
	if ci == len(b.chunks) {
		c := &chunk{}
		b.chunks = append(b.chunks, c)
		if !b.shared {
			b.owned = append(b.owned, true)
		}
		return c
	}
	if b.shared {
		if ci >= len(b.base.chunks) {
			// A tail chunk this builder appended: already builder-local.
			return b.chunks[ci]
		}
		b.privatize()
	}
	if !b.owned[ci] {
		c := *b.chunks[ci]
		b.chunks[ci] = &c
		b.owned[ci] = true
	}
	return b.chunks[ci]
}

// Len returns the live row count of the builder's working state.
func (b *Builder) Len() int { return b.n }

// Capacity returns the slot count of the builder's working state.
func (b *Builder) Capacity() int { return b.slots }

// Get returns a row of the builder's working state.
func (b *Builder) Get(id int) (Row, bool) {
	if id < 0 || id >= b.slots {
		return nil, false
	}
	c := b.chunks[id/chunkSize]
	if !c.live[id%chunkSize] {
		return nil, false
	}
	return c.rows[id%chunkSize], true
}

// Insert stores a row and returns its id, reusing a tombstoned slot
// when one has fallen behind the transaction horizon.
func (b *Builder) Insert(r Row) int {
	for b.popped < len(b.base.free) {
		fs := b.base.free[b.popped]
		if fs.seq >= b.horizon {
			break
		}
		b.popped++
		ci, off := fs.id/chunkSize, fs.id%chunkSize
		if b.chunks[ci].live[off] || b.chunks[ci].freed[off] != fs.seq {
			// Stale entry: a rollback revived the slot after it was
			// freed (and, if it died again, the newer death queued its
			// own entry under its own stamp, which gates reuse against
			// the horizon correctly). Drop it and keep looking.
			continue
		}
		c := b.mutable(ci)
		c.rows[off] = r
		c.live[off] = true
		b.n++
		return fs.id
	}
	id := b.slots
	ci, off := id/chunkSize, id%chunkSize
	var c *chunk
	if ci < len(b.chunks) {
		// Tail slots at or beyond the published bound are invisible to
		// every reader, so the shared tail chunk is filled in place.
		c = b.chunks[ci]
	} else {
		c = b.mutable(ci)
	}
	c.rows[off] = r
	c.live[off] = true
	b.slots = id + 1
	b.n++
	return id
}

// InsertAt revives a specific row id with the given content — used
// only by transaction rollback to undo a delete. The slot must be a
// tombstone. The slot's free-list entry is left in place but becomes
// permanently stale: Insert skips entries whose slot is live or whose
// stamp no longer matches the slot's most recent death.
func (b *Builder) InsertAt(id int, r Row) error {
	if id < 0 || id >= b.slots {
		return fmt.Errorf("storage: row id %d out of range", id)
	}
	ci, off := id/chunkSize, id%chunkSize
	if b.chunks[ci].live[off] {
		return fmt.Errorf("storage: row id %d is live", id)
	}
	c := b.mutable(ci)
	c.rows[off] = r
	c.live[off] = true
	b.n++
	return nil
}

// Delete tombstones a row, returning its former content and queueing
// the slot for horizon-gated reuse.
func (b *Builder) Delete(id int) (Row, error) {
	if id < 0 || id >= b.slots {
		return nil, fmt.Errorf("storage: no row %d", id)
	}
	ci, off := id/chunkSize, id%chunkSize
	if !b.chunks[ci].live[off] {
		return nil, fmt.Errorf("storage: no row %d", id)
	}
	c := b.mutable(ci)
	old := c.rows[off]
	c.rows[off] = nil
	c.live[off] = false
	c.freed[off] = b.seq
	b.n--
	b.pushes = append(b.pushes, freeSlot{id: id, seq: b.seq})
	return old, nil
}

// Update replaces a row's content, returning the former content.
func (b *Builder) Update(id int, r Row) (Row, error) {
	if id < 0 || id >= b.slots {
		return nil, fmt.Errorf("storage: no row %d", id)
	}
	ci, off := id/chunkSize, id%chunkSize
	if !b.chunks[ci].live[off] {
		return nil, fmt.Errorf("storage: no row %d", id)
	}
	c := b.mutable(ci)
	old := c.rows[off]
	c.rows[off] = r
	return old, nil
}

// Scan visits every live row of the builder's working state in id
// order until yield returns false.
func (b *Builder) Scan(yield func(id int, r Row) bool) {
	for ci, c := range b.chunks {
		base := ci * chunkSize
		end := b.slots - base
		if end > chunkSize {
			end = chunkSize
		}
		for off := 0; off < end; off++ {
			if c.live[off] && !yield(base+off, c.rows[off]) {
				return
			}
		}
	}
}

// Commit publishes the builder's state as a new immutable version.
// The caller installs it under the table's write lock; publication to
// lock-free readers happens through an atomic pointer store above this
// layer.
func (b *Builder) Commit() *Version {
	// The surviving tail of base.free shares its backing array;
	// appending this builder's pushes may write past base.free's
	// length into that backing, which is safe because only serialized
	// writers ever touch free lists.
	free := b.base.free[b.popped:]
	if len(b.pushes) > 0 {
		free = append(free, b.pushes...)
	}
	return &Version{
		seq:    b.seq,
		chunks: b.chunks,
		slots:  b.slots,
		n:      b.n,
		free:   free,
	}
}
