// Package core implements the TIP DataBlade: the registration of the five
// temporal datatypes (Chronon, Span, Instant, Period, Element) and their
// support routines, casts and aggregates into the extensible engine. Once
// Register has run, the TIP types behave as if they were built into the
// DBMS — exactly the deployment model of the paper's DataBlade.
//
// The catalogue follows §2 of the paper:
//
//   - five datatypes with literal text syntax and an efficient binary
//     format;
//   - casts between TIP datatypes whenever appropriate, including the
//     automatic string casts that let SQL literals carry TIP values;
//   - overloaded arithmetic and comparison operators (a Chronon minus a
//     Chronon is a Span; a Chronon plus a Chronon is a type error; a
//     comparison against a NOW-relative Instant depends on the current
//     transaction time);
//   - routines: Allen's operators for Periods, and union, intersect,
//     difference, overlaps, contains, length, start, ... for Elements;
//   - aggregates: group_union (the temporal coalescing aggregate),
//     group_intersect, and SUM/AVG over Spans.
package core

import (
	"fmt"

	"tip/internal/blade"
	"tip/internal/temporal"
	"tip/internal/types"
)

// Blade holds the interned TIP types after registration.
type Blade struct {
	Chronon *types.Type
	Span    *types.Type
	Instant *types.Type
	Period  *types.Type
	Element *types.Type
}

// Register installs the TIP DataBlade into a registry. It is the
// programmatic equivalent of Informix's "install TIP DataBlade" step.
func Register(reg *blade.Registry) (*Blade, error) {
	b := &Blade{}
	var err error
	if b.Chronon, err = reg.RegisterType(chrononUDT()); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if b.Span, err = reg.RegisterType(spanUDT()); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if b.Instant, err = reg.RegisterType(instantUDT()); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if b.Period, err = reg.RegisterType(periodUDT()); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if b.Element, err = reg.RegisterType(elementUDT()); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	b.registerCasts(reg)
	b.registerArithmetic(reg)
	b.registerPeriodRoutines(reg)
	b.registerElementRoutines(reg)
	b.registerGranularity(reg)
	b.registerAggregates(reg)
	return b, nil
}

// MustRegister is Register that panics on failure; for initialisation
// paths that cannot reasonably continue.
func MustRegister(reg *blade.Registry) *Blade {
	b, err := Register(reg)
	if err != nil {
		panic(err)
	}
	return b
}

// ---------------------------------------------------------------- datatypes

func chrononUDT() *types.UDT {
	return &types.UDT{
		Name: "Chronon",
		Parse: func(s string) (any, error) {
			return temporal.ParseChronon(s)
		},
		Format: func(v any) string { return v.(temporal.Chronon).String() },
		Encode: func(v any, buf []byte) []byte { return v.(temporal.Chronon).AppendBinary(buf) },
		Decode: func(buf []byte) (any, []byte, error) { return decodeAdapter(temporal.DecodeChronon, buf) },
		Compare: func(a, b any, _ temporal.Chronon) (int, error) {
			return a.(temporal.Chronon).Compare(b.(temporal.Chronon)), nil
		},
		StableKey: true,
	}
}

func spanUDT() *types.UDT {
	return &types.UDT{
		Name: "Span",
		Parse: func(s string) (any, error) {
			return temporal.ParseSpan(s)
		},
		Format: func(v any) string { return v.(temporal.Span).String() },
		Encode: func(v any, buf []byte) []byte { return v.(temporal.Span).AppendBinary(buf) },
		Decode: func(buf []byte) (any, []byte, error) { return decodeAdapter(temporal.DecodeSpan, buf) },
		Compare: func(a, b any, _ temporal.Chronon) (int, error) {
			return a.(temporal.Span).Compare(b.(temporal.Span)), nil
		},
		StableKey: true,
	}
}

func instantUDT() *types.UDT {
	return &types.UDT{
		Name: "Instant",
		Parse: func(s string) (any, error) {
			return temporal.ParseInstant(s)
		},
		Format: func(v any) string { return v.(temporal.Instant).String() },
		Encode: func(v any, buf []byte) []byte { return v.(temporal.Instant).AppendBinary(buf) },
		Decode: func(buf []byte) (any, []byte, error) { return decodeAdapter(temporal.DecodeInstant, buf) },
		// Instants order by their binding at the current transaction
		// time: the comparison the paper highlights as time-dependent.
		Compare: func(a, b any, now temporal.Chronon) (int, error) {
			return a.(temporal.Instant).Compare(b.(temporal.Instant), now), nil
		},
		Key: func(v any, now temporal.Chronon) string {
			return v.(temporal.Instant).Bind(now).String()
		},
	}
}

func periodUDT() *types.UDT {
	return &types.UDT{
		Name: "Period",
		Parse: func(s string) (any, error) {
			return temporal.ParsePeriod(s)
		},
		Format: func(v any) string { return v.(temporal.Period).String() },
		Encode: func(v any, buf []byte) []byte { return v.(temporal.Period).AppendBinary(buf) },
		Decode: func(buf []byte) (any, []byte, error) { return decodeAdapter(temporal.DecodePeriod, buf) },
		// Periods order lexicographically by their bound endpoints;
		// periods that bind empty sort first.
		Compare: func(a, b any, now temporal.Chronon) (int, error) {
			pa, okA := a.(temporal.Period).Bind(now)
			pb, okB := b.(temporal.Period).Bind(now)
			switch {
			case !okA && !okB:
				return 0, nil
			case !okA:
				return -1, nil
			case !okB:
				return 1, nil
			case pa.Lo != pb.Lo:
				return pa.Lo.Compare(pb.Lo), nil
			default:
				return pa.Hi.Compare(pb.Hi), nil
			}
		},
		Key: func(v any, now temporal.Chronon) string {
			iv, ok := v.(temporal.Period).Bind(now)
			if !ok {
				return "<empty>"
			}
			return iv.Period().String()
		},
	}
}

func elementUDT() *types.UDT {
	return &types.UDT{
		Name: "Element",
		// Parse accepts an element literal, or any narrower temporal
		// literal (period, instant, chronon) lifted into a singleton
		// element — the widening casts applied at the text level.
		Parse: func(s string) (any, error) {
			e, err := temporal.ParseElement(s)
			if err == nil {
				return e, nil
			}
			if p, perr := temporal.ParsePeriod(s); perr == nil {
				return p.Element(), nil
			}
			if i, ierr := temporal.ParseInstant(s); ierr == nil {
				return temporal.Period{Start: i, End: i}.Element(), nil
			}
			return nil, err
		},
		Format: func(v any) string { return v.(temporal.Element).String() },
		Encode: func(v any, buf []byte) []byte { return v.(temporal.Element).AppendBinary(buf) },
		Decode: func(buf []byte) (any, []byte, error) { return decodeAdapter(temporal.DecodeElement, buf) },
		// Elements have no natural total order; GROUP BY and DISTINCT use
		// the canonical bound form, so denotationally equal elements
		// group together.
		Key: func(v any, now temporal.Chronon) string {
			return v.(temporal.Element).BoundElement(now).String()
		},
	}
}

// decodeAdapter lifts a typed temporal decoder into the UDT Decode shape.
func decodeAdapter[T any](dec func([]byte) (T, []byte, error), buf []byte) (any, []byte, error) {
	v, rest, err := dec(buf)
	if err != nil {
		return nil, nil, err
	}
	return v, rest, nil
}

// ------------------------------------------------------------- value helpers

// ChrononValue wraps a temporal.Chronon as an engine value.
func (b *Blade) ChrononValue(c temporal.Chronon) types.Value { return types.NewUDT(b.Chronon, c) }

// SpanValue wraps a temporal.Span as an engine value.
func (b *Blade) SpanValue(s temporal.Span) types.Value { return types.NewUDT(b.Span, s) }

// InstantValue wraps a temporal.Instant as an engine value.
func (b *Blade) InstantValue(i temporal.Instant) types.Value { return types.NewUDT(b.Instant, i) }

// PeriodValue wraps a temporal.Period as an engine value.
func (b *Blade) PeriodValue(p temporal.Period) types.Value { return types.NewUDT(b.Period, p) }

// ElementValue wraps a temporal.Element as an engine value.
func (b *Blade) ElementValue(e temporal.Element) types.Value { return types.NewUDT(b.Element, e) }
