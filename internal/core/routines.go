package core

import (
	"tip/internal/blade"
	"tip/internal/temporal"
	"tip/internal/types"
)

// registerPeriodRoutines installs Allen's interval operators for Periods
// plus the period accessors. TIP exposes the strict Allen relations under
// their classical names; `overlaps` and `contains` on Periods keep the
// loose predicate semantics that temporal queries almost always want (the
// strict Allen variants are available as allen_overlaps / allen_contains),
// and `allen(p, q)` names the exact relation.
func (b *Blade) registerPeriodRoutines(reg *blade.Registry) {
	rt := func(name string, params []*types.Type, result *types.Type, fn blade.RoutineFn) {
		reg.MustRegisterRoutine(&blade.Routine{
			Name: name, Params: params, Result: result, Strict: true, Fn: fn,
		})
	}
	pp := []*types.Type{b.Period, b.Period}
	pred := func(name string, f func(p, q temporal.Period, now temporal.Chronon) bool) {
		rt(name, pp, types.TBool, func(ctx *blade.Ctx, args []types.Value) (types.Value, error) {
			return types.NewBool(f(args[0].Obj().(temporal.Period), args[1].Obj().(temporal.Period), ctx.Now)), nil
		})
	}

	pred("before", temporal.PeriodBefore)
	pred("after", temporal.PeriodAfter)
	pred("meets", temporal.PeriodMeets)
	pred("met_by", temporal.PeriodMetBy)
	pred("starts", temporal.PeriodStarts)
	pred("started_by", func(p, q temporal.Period, now temporal.Chronon) bool {
		return temporal.Allen(p, q, now) == temporal.AllenStartedBy
	})
	pred("during", temporal.PeriodDuring)
	pred("finishes", temporal.PeriodFinishes)
	pred("finished_by", func(p, q temporal.Period, now temporal.Chronon) bool {
		return temporal.Allen(p, q, now) == temporal.AllenFinishedBy
	})
	pred("equals", temporal.PeriodEquals)
	pred("allen_overlaps", temporal.PeriodOverlapsAllen)
	pred("allen_overlapped_by", func(p, q temporal.Period, now temporal.Chronon) bool {
		return temporal.Allen(p, q, now) == temporal.AllenOverlappedBy
	})
	pred("allen_contains", func(p, q temporal.Period, now temporal.Chronon) bool {
		return temporal.Allen(p, q, now) == temporal.AllenContains
	})

	// allen(p, q) names the exact relation, e.g. 'overlaps'.
	rt("allen", pp, types.TString, func(ctx *blade.Ctx, args []types.Value) (types.Value, error) {
		rel := temporal.Allen(args[0].Obj().(temporal.Period), args[1].Obj().(temporal.Period), ctx.Now)
		return types.NewString(rel.String()), nil
	})

	// Period accessors. start/end return bound Chronons (usable in
	// arithmetic); rawstart/rawend return the stored Instants.
	rt("start", []*types.Type{b.Period}, b.Chronon,
		func(ctx *blade.Ctx, args []types.Value) (types.Value, error) {
			return b.ChrononValue(args[0].Obj().(temporal.Period).Start.Bind(ctx.Now)), nil
		})
	rt("end", []*types.Type{b.Period}, b.Chronon,
		func(ctx *blade.Ctx, args []types.Value) (types.Value, error) {
			return b.ChrononValue(args[0].Obj().(temporal.Period).End.Bind(ctx.Now)), nil
		})
	rt("rawstart", []*types.Type{b.Period}, b.Instant,
		func(_ *blade.Ctx, args []types.Value) (types.Value, error) {
			return b.InstantValue(args[0].Obj().(temporal.Period).Start), nil
		})
	rt("rawend", []*types.Type{b.Period}, b.Instant,
		func(_ *blade.Ctx, args []types.Value) (types.Value, error) {
			return b.InstantValue(args[0].Obj().(temporal.Period).End), nil
		})
	rt("length", []*types.Type{b.Period}, b.Span,
		func(ctx *blade.Ctx, args []types.Value) (types.Value, error) {
			return b.SpanValue(args[0].Obj().(temporal.Period).Length(ctx.Now)), nil
		})
	rt("period", []*types.Type{b.Instant, b.Instant}, b.Period,
		func(_ *blade.Ctx, args []types.Value) (types.Value, error) {
			return b.PeriodValue(temporal.Period{
				Start: args[0].Obj().(temporal.Instant),
				End:   args[1].Obj().(temporal.Instant),
			}), nil
		})
	// bind substitutes the transaction time for NOW.
	rt("bind", []*types.Type{b.Instant}, b.Chronon,
		func(ctx *blade.Ctx, args []types.Value) (types.Value, error) {
			return b.ChrononValue(args[0].Obj().(temporal.Instant).Bind(ctx.Now)), nil
		})
	rt("bind", []*types.Type{b.Period}, b.Period,
		func(ctx *blade.Ctx, args []types.Value) (types.Value, error) {
			iv, ok := args[0].Obj().(temporal.Period).Bind(ctx.Now)
			if !ok {
				return types.NewNull(b.Period), nil
			}
			return b.PeriodValue(iv.Period()), nil
		})
}

// registerElementRoutines installs the Element algebra of §2: union,
// intersect, difference, overlaps, contains, length, start — all with
// their expected set semantics, evaluated under the transaction time.
func (b *Blade) registerElementRoutines(reg *blade.Registry) {
	rt := func(name string, params []*types.Type, result *types.Type, fn blade.RoutineFn) {
		reg.MustRegisterRoutine(&blade.Routine{
			Name: name, Params: params, Result: result, Strict: true, Fn: fn,
		})
	}
	ee := []*types.Type{b.Element, b.Element}
	binOp := func(name string, f func(a, c temporal.Element, now temporal.Chronon) temporal.Element) {
		rt(name, ee, b.Element, func(ctx *blade.Ctx, args []types.Value) (types.Value, error) {
			return b.ElementValue(f(args[0].Obj().(temporal.Element), args[1].Obj().(temporal.Element), ctx.Now)), nil
		})
	}
	binPred := func(name string, f func(a, c temporal.Element, now temporal.Chronon) bool) {
		rt(name, ee, types.TBool, func(ctx *blade.Ctx, args []types.Value) (types.Value, error) {
			return types.NewBool(f(args[0].Obj().(temporal.Element), args[1].Obj().(temporal.Element), ctx.Now)), nil
		})
	}

	binOp("union", temporal.Element.Union)
	binOp("intersect", temporal.Element.Intersect)
	binOp("difference", temporal.Element.Difference)
	binPred("overlaps", temporal.Element.Overlaps)
	binPred("contains", temporal.Element.Contains)

	rt("complement", []*types.Type{b.Element}, b.Element,
		func(ctx *blade.Ctx, args []types.Value) (types.Value, error) {
			return b.ElementValue(args[0].Obj().(temporal.Element).Complement(ctx.Now)), nil
		})
	rt("length", []*types.Type{b.Element}, b.Span,
		func(ctx *blade.Ctx, args []types.Value) (types.Value, error) {
			return b.SpanValue(args[0].Obj().(temporal.Element).Length(ctx.Now)), nil
		})
	// start(e): the start time of the first period in an Element — the
	// routine the paper's Tylenol query uses. NULL for an element that
	// denotes the empty set.
	rt("start", []*types.Type{b.Element}, b.Chronon,
		func(ctx *blade.Ctx, args []types.Value) (types.Value, error) {
			c, ok := args[0].Obj().(temporal.Element).Start(ctx.Now)
			if !ok {
				return types.NewNull(b.Chronon), nil
			}
			return b.ChrononValue(c), nil
		})
	rt("end", []*types.Type{b.Element}, b.Chronon,
		func(ctx *blade.Ctx, args []types.Value) (types.Value, error) {
			c, ok := args[0].Obj().(temporal.Element).End(ctx.Now)
			if !ok {
				return types.NewNull(b.Chronon), nil
			}
			return b.ChrononValue(c), nil
		})
	rt("first", []*types.Type{b.Element}, b.Period,
		func(_ *blade.Ctx, args []types.Value) (types.Value, error) {
			p, ok := args[0].Obj().(temporal.Element).First()
			if !ok {
				return types.NewNull(b.Period), nil
			}
			return b.PeriodValue(p), nil
		})
	rt("last", []*types.Type{b.Element}, b.Period,
		func(_ *blade.Ctx, args []types.Value) (types.Value, error) {
			p, ok := args[0].Obj().(temporal.Element).Last()
			if !ok {
				return types.NewNull(b.Period), nil
			}
			return b.PeriodValue(p), nil
		})
	rt("nperiods", []*types.Type{b.Element}, types.TInt,
		func(_ *blade.Ctx, args []types.Value) (types.Value, error) {
			return types.NewInt(int64(args[0].Obj().(temporal.Element).NumPeriods())), nil
		})
	rt("isempty", []*types.Type{b.Element}, types.TBool,
		func(ctx *blade.Ctx, args []types.Value) (types.Value, error) {
			return types.NewBool(len(args[0].Obj().(temporal.Element).Bind(ctx.Now)) == 0), nil
		})
	rt("bind", []*types.Type{b.Element}, b.Element,
		func(ctx *blade.Ctx, args []types.Value) (types.Value, error) {
			return b.ElementValue(args[0].Obj().(temporal.Element).BoundElement(ctx.Now)), nil
		})
	// isopen: does any period end NOW-relatively (still growing)? The
	// predicate temporal view maintenance uses to find current rows.
	rt("isopen", []*types.Type{b.Element}, types.TBool,
		func(_ *blade.Ctx, args []types.Value) (types.Value, error) {
			for _, p := range args[0].Obj().(temporal.Element).Periods() {
				if p.End.Relative() {
					return types.NewBool(true), nil
				}
			}
			return types.NewBool(false), nil
		})
	rt("isopen", []*types.Type{b.Period}, types.TBool,
		func(_ *blade.Ctx, args []types.Value) (types.Value, error) {
			return types.NewBool(args[0].Obj().(temporal.Period).End.Relative()), nil
		})
	// contains(e, chronon) — membership of a point in time.
	rt("contains", []*types.Type{b.Element, b.Chronon}, types.TBool,
		func(ctx *blade.Ctx, args []types.Value) (types.Value, error) {
			ok := args[0].Obj().(temporal.Element).ContainsChronon(args[1].Obj().(temporal.Chronon), ctx.Now)
			return types.NewBool(ok), nil
		})
}

// registerAggregates installs the TIP aggregate functions: group_union
// (the coalescing aggregate behind length(group_union(valid))),
// group_intersect, and SUM/AVG over Spans.
func (b *Blade) registerAggregates(reg *blade.Registry) {
	reg.MustRegisterAggregate(&blade.Aggregate{
		Name: "group_union", Param: b.Element, Result: b.Element,
		New: func() blade.AggState { return &elementSetAgg{blade: b, union: true} },
	})
	reg.MustRegisterAggregate(&blade.Aggregate{
		Name: "group_intersect", Param: b.Element, Result: b.Element,
		New: func() blade.AggState { return &elementSetAgg{blade: b} },
	})
	reg.MustRegisterAggregate(&blade.Aggregate{
		Name: "sum", Param: b.Span, Result: b.Span,
		New: func() blade.AggState { return &spanSumAgg{blade: b} },
	})
	reg.MustRegisterAggregate(&blade.Aggregate{
		Name: "avg", Param: b.Span, Result: b.Span,
		New: func() blade.AggState { return &spanSumAgg{blade: b, average: true} },
	})
}

// elementSetAgg folds elements with union or intersection. Union defers
// normalisation: it gathers every input period and coalesces once at
// Final, so a group of n single-period elements unions in O(n log n)
// total rather than the O(n²) of stepwise union. Intersection shrinks
// monotonically and folds stepwise.
type elementSetAgg struct {
	blade   *Blade
	union   bool
	periods []temporal.Period // union accumulator
	acc     temporal.Element  // intersect accumulator
	any     bool
}

func (a *elementSetAgg) Step(ctx *blade.Ctx, v types.Value) error {
	e := v.Obj().(temporal.Element)
	if a.union {
		bound := e.BoundElement(ctx.Now)
		a.periods = append(a.periods, bound.Periods()...)
		a.any = true
		return nil
	}
	if !a.any {
		a.acc, a.any = e.BoundElement(ctx.Now), true
		return nil
	}
	a.acc = a.acc.Intersect(e, ctx.Now)
	return nil
}

func (a *elementSetAgg) Final(*blade.Ctx) (types.Value, error) {
	if a.union {
		e, err := temporal.MakeElement(a.periods...)
		if err != nil {
			return types.Value{}, err
		}
		return a.blade.ElementValue(e), nil
	}
	return a.blade.ElementValue(a.acc), nil
}

// spanSumAgg sums (or averages) spans.
type spanSumAgg struct {
	blade   *Blade
	average bool
	sum     temporal.Span
	n       int64
}

func (a *spanSumAgg) Step(_ *blade.Ctx, v types.Value) error {
	s, err := a.sum.Add(v.Obj().(temporal.Span))
	if err != nil {
		return err
	}
	a.sum = s
	a.n++
	return nil
}

func (a *spanSumAgg) Final(*blade.Ctx) (types.Value, error) {
	if a.average {
		out, err := a.sum.Div(a.n)
		if err != nil {
			return types.Value{}, err
		}
		return a.blade.SpanValue(out), nil
	}
	return a.blade.SpanValue(a.sum), nil
}
