package core

import (
	"tip/internal/blade"
	"tip/internal/temporal"
	"tip/internal/types"
)

// registerArithmetic installs the overloaded arithmetic operators of §2:
// a Chronon minus a Chronon returns a Span, a Chronon plus a Span a
// Chronon — and a Chronon plus a Chronon stays a type error because no
// such overload exists.
func (b *Blade) registerArithmetic(reg *blade.Registry) {
	rt := func(name string, params []*types.Type, result *types.Type, fn blade.RoutineFn) {
		reg.MustRegisterRoutine(&blade.Routine{
			Name: name, Params: params, Result: result, Strict: true, Fn: fn,
		})
	}

	// Chronon ± Span.
	rt("+", []*types.Type{b.Chronon, b.Span}, b.Chronon,
		func(_ *blade.Ctx, args []types.Value) (types.Value, error) {
			c, err := args[0].Obj().(temporal.Chronon).AddSpan(args[1].Obj().(temporal.Span))
			if err != nil {
				return types.Value{}, err
			}
			return b.ChrononValue(c), nil
		})
	rt("+", []*types.Type{b.Span, b.Chronon}, b.Chronon,
		func(_ *blade.Ctx, args []types.Value) (types.Value, error) {
			c, err := args[1].Obj().(temporal.Chronon).AddSpan(args[0].Obj().(temporal.Span))
			if err != nil {
				return types.Value{}, err
			}
			return b.ChrononValue(c), nil
		})
	rt("-", []*types.Type{b.Chronon, b.Span}, b.Chronon,
		func(_ *blade.Ctx, args []types.Value) (types.Value, error) {
			c, err := args[0].Obj().(temporal.Chronon).AddSpan(-args[1].Obj().(temporal.Span))
			if err != nil {
				return types.Value{}, err
			}
			return b.ChrononValue(c), nil
		})
	// Chronon - Chronon = Span.
	rt("-", []*types.Type{b.Chronon, b.Chronon}, b.Span,
		func(_ *blade.Ctx, args []types.Value) (types.Value, error) {
			return b.SpanValue(args[0].Obj().(temporal.Chronon).SubChronon(args[1].Obj().(temporal.Chronon))), nil
		})

	// Span arithmetic.
	rt("+", []*types.Type{b.Span, b.Span}, b.Span,
		func(_ *blade.Ctx, args []types.Value) (types.Value, error) {
			s, err := args[0].Obj().(temporal.Span).Add(args[1].Obj().(temporal.Span))
			if err != nil {
				return types.Value{}, err
			}
			return b.SpanValue(s), nil
		})
	rt("-", []*types.Type{b.Span, b.Span}, b.Span,
		func(_ *blade.Ctx, args []types.Value) (types.Value, error) {
			s, err := args[0].Obj().(temporal.Span).Sub(args[1].Obj().(temporal.Span))
			if err != nil {
				return types.Value{}, err
			}
			return b.SpanValue(s), nil
		})
	spanMulInt := func(_ *blade.Ctx, s temporal.Span, k int64) (types.Value, error) {
		out, err := s.Mul(k)
		if err != nil {
			return types.Value{}, err
		}
		return b.SpanValue(out), nil
	}
	// Span * INT and INT * Span: the paper's '7 00:00:00'::Span * :w.
	rt("*", []*types.Type{b.Span, types.TInt}, b.Span,
		func(ctx *blade.Ctx, args []types.Value) (types.Value, error) {
			return spanMulInt(ctx, args[0].Obj().(temporal.Span), args[1].Int())
		})
	rt("*", []*types.Type{types.TInt, b.Span}, b.Span,
		func(ctx *blade.Ctx, args []types.Value) (types.Value, error) {
			return spanMulInt(ctx, args[1].Obj().(temporal.Span), args[0].Int())
		})
	rt("*", []*types.Type{b.Span, types.TFloat}, b.Span,
		func(_ *blade.Ctx, args []types.Value) (types.Value, error) {
			s, err := args[0].Obj().(temporal.Span).MulFloat(args[1].Float())
			if err != nil {
				return types.Value{}, err
			}
			return b.SpanValue(s), nil
		})
	rt("/", []*types.Type{b.Span, types.TInt}, b.Span,
		func(_ *blade.Ctx, args []types.Value) (types.Value, error) {
			s, err := args[0].Obj().(temporal.Span).Div(args[1].Int())
			if err != nil {
				return types.Value{}, err
			}
			return b.SpanValue(s), nil
		})
	// Span / Span = FLOAT (how many of one duration fit in another).
	rt("/", []*types.Type{b.Span, b.Span}, types.TFloat,
		func(_ *blade.Ctx, args []types.Value) (types.Value, error) {
			f, err := args[0].Obj().(temporal.Span).Ratio(args[1].Obj().(temporal.Span))
			if err != nil {
				return types.Value{}, err
			}
			return types.NewFloat(f), nil
		})
	// Unary minus on Span (the executor dispatches unknown unary minus
	// to the routine "neg").
	rt("neg", []*types.Type{b.Span}, b.Span,
		func(_ *blade.Ctx, args []types.Value) (types.Value, error) {
			return b.SpanValue(args[0].Obj().(temporal.Span).Neg()), nil
		})

	// Instant ± Span, preserving NOW-relativity.
	rt("+", []*types.Type{b.Instant, b.Span}, b.Instant,
		func(_ *blade.Ctx, args []types.Value) (types.Value, error) {
			i, err := args[0].Obj().(temporal.Instant).AddSpan(args[1].Obj().(temporal.Span))
			if err != nil {
				return types.Value{}, err
			}
			return b.InstantValue(i), nil
		})
	rt("-", []*types.Type{b.Instant, b.Span}, b.Instant,
		func(_ *blade.Ctx, args []types.Value) (types.Value, error) {
			i, err := args[0].Obj().(temporal.Instant).AddSpan(-args[1].Obj().(temporal.Span))
			if err != nil {
				return types.Value{}, err
			}
			return b.InstantValue(i), nil
		})
	// Instant - Instant: bound subtraction under the transaction time.
	rt("-", []*types.Type{b.Instant, b.Instant}, b.Span,
		func(ctx *blade.Ctx, args []types.Value) (types.Value, error) {
			a := args[0].Obj().(temporal.Instant).Bind(ctx.Now)
			c := args[1].Obj().(temporal.Instant).Bind(ctx.Now)
			return b.SpanValue(a.SubChronon(c)), nil
		})

	// Period ± Span and Element ± Span: shifting along the time line.
	rt("+", []*types.Type{b.Period, b.Span}, b.Period,
		func(_ *blade.Ctx, args []types.Value) (types.Value, error) {
			p, err := args[0].Obj().(temporal.Period).Shift(args[1].Obj().(temporal.Span))
			if err != nil {
				return types.Value{}, err
			}
			return b.PeriodValue(p), nil
		})
	rt("-", []*types.Type{b.Period, b.Span}, b.Period,
		func(_ *blade.Ctx, args []types.Value) (types.Value, error) {
			p, err := args[0].Obj().(temporal.Period).Shift(-args[1].Obj().(temporal.Span))
			if err != nil {
				return types.Value{}, err
			}
			return b.PeriodValue(p), nil
		})
	rt("+", []*types.Type{b.Element, b.Span}, b.Element,
		func(_ *blade.Ctx, args []types.Value) (types.Value, error) {
			e, err := args[0].Obj().(temporal.Element).Shift(args[1].Obj().(temporal.Span))
			if err != nil {
				return types.Value{}, err
			}
			return b.ElementValue(e), nil
		})
	rt("-", []*types.Type{b.Element, b.Span}, b.Element,
		func(_ *blade.Ctx, args []types.Value) (types.Value, error) {
			e, err := args[0].Obj().(temporal.Element).Shift(-args[1].Obj().(temporal.Span))
			if err != nil {
				return types.Value{}, err
			}
			return b.ElementValue(e), nil
		})

	// Element set equality is NOW-dependent; register "=" and "<>" so
	// comparisons use denotational semantics rather than a structural
	// order (Elements have no total order).
	rt("=", []*types.Type{b.Element, b.Element}, types.TBool,
		func(ctx *blade.Ctx, args []types.Value) (types.Value, error) {
			eq := args[0].Obj().(temporal.Element).Equal(args[1].Obj().(temporal.Element), ctx.Now)
			return types.NewBool(eq), nil
		})
	rt("<>", []*types.Type{b.Element, b.Element}, types.TBool,
		func(ctx *blade.Ctx, args []types.Value) (types.Value, error) {
			eq := args[0].Obj().(temporal.Element).Equal(args[1].Obj().(temporal.Element), ctx.Now)
			return types.NewBool(!eq), nil
		})

	// now() — the current transaction time as a Chronon; handy in SQL
	// even though the symbol NOW normally appears inside literals.
	rt("now", nil, b.Chronon,
		func(ctx *blade.Ctx, _ []types.Value) (types.Value, error) {
			return b.ChrononValue(ctx.Now), nil
		})
}
