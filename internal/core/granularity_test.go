package core_test

import (
	"testing"

	"tip/internal/temporal"
)

// one runs a single-row, single-column query and returns the formatted
// cell.
func one(t *testing.T, sql string) string {
	t.Helper()
	_, s, _ := newTestDB(t)
	res := mustExec(t, s, sql)
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		t.Fatalf("%s: shape %dx%d", sql, len(res.Rows), len(res.Cols))
	}
	return res.Rows[0][0].Format()
}

func TestCivilExtraction(t *testing.T) {
	tests := []struct{ sql, want string }{
		{`SELECT year('1999-11-12 13:30:45'::Chronon)`, "1999"},
		{`SELECT month('1999-11-12'::Chronon)`, "11"},
		{`SELECT day('1999-11-12'::Chronon)`, "12"},
		{`SELECT hour('1999-11-12 13:30:45'::Chronon)`, "13"},
		{`SELECT minute('1999-11-12 13:30:45'::Chronon)`, "30"},
		{`SELECT second('1999-11-12 13:30:45'::Chronon)`, "45"},
		{`SELECT dow('1999-11-12'::Chronon)`, "5"}, // a Friday
	}
	for _, tt := range tests {
		if got := one(t, tt.sql); got != tt.want {
			t.Errorf("%s = %s, want %s", tt.sql, got, tt.want)
		}
	}
}

func TestChrononSpanConstructors(t *testing.T) {
	tests := []struct{ sql, want string }{
		{`SELECT chronon(1999, 11, 12)`, "1999-11-12"},
		{`SELECT chronon(1999, 11, 12, 13, 30, 45)`, "1999-11-12 13:30:45"},
		{`SELECT span(7)`, "7"},
		{`SELECT span(7, 12, 0, 0)`, "7 12:00:00"},
		{`SELECT span(0, 8, 30, 15)`, "0 08:30:15"},
	}
	for _, tt := range tests {
		if got := one(t, tt.sql); got != tt.want {
			t.Errorf("%s = %s, want %s", tt.sql, got, tt.want)
		}
	}
	_, s, _ := newTestDB(t)
	if _, err := s.Exec(`SELECT chronon(1999, 13, 1)`, nil); err == nil {
		t.Error("invalid month should fail")
	}
}

func TestCalendarPeriods(t *testing.T) {
	tests := []struct{ sql, want string }{
		{`SELECT year_of('1999-11-12'::Chronon)`, "[1999-01-01, 1999-12-31 23:59:59]"},
		{`SELECT month_of('1999-11-12'::Chronon)`, "[1999-11-01, 1999-11-30 23:59:59]"},
		{`SELECT month_of('1999-12-12'::Chronon)`, "[1999-12-01, 1999-12-31 23:59:59]"},
		{`SELECT month_of('2000-02-10'::Chronon)`, "[2000-02-01, 2000-02-29 23:59:59]"},
		{`SELECT day_of('1999-11-12 13:00:00'::Chronon)`, "[1999-11-12, 1999-11-12 23:59:59]"},
	}
	for _, tt := range tests {
		if got := one(t, tt.sql); got != tt.want {
			t.Errorf("%s = %s, want %s", tt.sql, got, tt.want)
		}
	}
}

func TestRestrictAndGaps(t *testing.T) {
	if got := one(t, `SELECT restrict('{[1999-01-01, 1999-06-30], [1999-09-01, 1999-12-31]}'::Element,
			'[1999-06-01, 1999-10-01]'::Period)`); got != "{[1999-06-01, 1999-06-30], [1999-09-01, 1999-10-01]}" {
		t.Errorf("restrict = %s", got)
	}
	if got := one(t, `SELECT gaps('{[1999-01-01, 1999-03-01], [1999-06-01, 1999-08-01]}'::Element)`); got != "{[1999-03-01 00:00:01, 1999-05-31 23:59:59]}" {
		t.Errorf("gaps = %s", got)
	}
	if got := one(t, `SELECT gaps('{[1999-01-01, 1999-03-01]}'::Element)`); got != "{}" {
		t.Errorf("gaps of single period = %s", got)
	}
}

func TestPrecedesSucceeds(t *testing.T) {
	tests := []struct {
		sql  string
		want string
	}{
		{`SELECT precedes('{[1999-01-01, 1999-02-01]}'::Element, '{[1999-03-01, 1999-04-01]}'::Element)`, "TRUE"},
		{`SELECT precedes('{[1999-01-01, 1999-03-15]}'::Element, '{[1999-03-01, 1999-04-01]}'::Element)`, "FALSE"},
		{`SELECT succeeds('{[1999-03-01, 1999-04-01]}'::Element, '{[1999-01-01, 1999-02-01]}'::Element)`, "TRUE"},
		{`SELECT succeeds('{[1999-01-01, 1999-02-01]}'::Element, '{[1999-03-01, 1999-04-01]}'::Element)`, "FALSE"},
	}
	for _, tt := range tests {
		if got := one(t, tt.sql); got != tt.want {
			t.Errorf("%s = %s, want %s", tt.sql, got, tt.want)
		}
	}
}

// TestGranularityGroupBy exercises the motivating use: grouping history
// by calendar granule.
func TestGranularityGroupBy(t *testing.T) {
	_, s, _ := newTestDB(t)
	seedMedical(t, s)
	res := mustExec(t, s, `
		SELECT year(start(valid)), COUNT(*)
		FROM Prescription GROUP BY year(start(valid)) ORDER BY 1`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 1999 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][1].Int() != 8 {
		t.Errorf("count = %d", res.Rows[0][1].Int())
	}
	// Monthly medication profile via restrict.
	res = mustExec(t, s, `
		SELECT length(restrict(valid, month_of('1999-02-01'::Chronon)))
		FROM Prescription WHERE patient = 'Mx.Overlap' ORDER BY drug`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	febA := res.Rows[0][0].Obj().(temporal.Span) // DrugA covers all of Feb
	if febA < 27*temporal.Day {
		t.Errorf("feb coverage = %v", febA)
	}
}
