package core

import (
	"fmt"

	"tip/internal/blade"
	"tip/internal/temporal"
	"tip/internal/types"
)

// registerCasts installs the conversions between TIP datatypes that the
// paper describes ("TIP provides casts between TIP datatypes whenever
// appropriate"), plus bridges to the engine's built-in DATE type. String
// casts were installed automatically when each type was registered.
//
// Widening casts are implicit (a Chronon is usable wherever an Instant,
// Period or Element is expected); narrowing casts that lose information
// or consult NOW are explicit.
func (b *Blade) registerCasts(reg *blade.Registry) {
	// Chronon → Instant (implicit widening).
	reg.MustRegisterCast(&blade.Cast{From: b.Chronon, To: b.Instant, Implicit: true,
		Fn: func(_ *blade.Ctx, v types.Value) (types.Value, error) {
			return b.InstantValue(v.Obj().(temporal.Chronon).Instant()), nil
		}})
	// Instant → Chronon (explicit: substitutes the current transaction
	// time for NOW, the paper's "NOW-1 becomes 1999-11-11" example).
	reg.MustRegisterCast(&blade.Cast{From: b.Instant, To: b.Chronon,
		Fn: func(ctx *blade.Ctx, v types.Value) (types.Value, error) {
			return b.ChrononValue(v.Obj().(temporal.Instant).Bind(ctx.Now)), nil
		}})
	// Chronon → Period (implicit: the degenerate period [c, c]).
	reg.MustRegisterCast(&blade.Cast{From: b.Chronon, To: b.Period, Implicit: true,
		Fn: func(_ *blade.Ctx, v types.Value) (types.Value, error) {
			return b.PeriodValue(v.Obj().(temporal.Chronon).Period()), nil
		}})
	// Instant → Period (implicit: the degenerate period [i, i]).
	reg.MustRegisterCast(&blade.Cast{From: b.Instant, To: b.Period, Implicit: true,
		Fn: func(_ *blade.Ctx, v types.Value) (types.Value, error) {
			i := v.Obj().(temporal.Instant)
			return b.PeriodValue(temporal.Period{Start: i, End: i}), nil
		}})
	// Period → Element (implicit: the singleton set).
	reg.MustRegisterCast(&blade.Cast{From: b.Period, To: b.Element, Implicit: true,
		Fn: func(_ *blade.Ctx, v types.Value) (types.Value, error) {
			return b.ElementValue(v.Obj().(temporal.Period).Element()), nil
		}})
	// Chronon → Element and Instant → Element (implicit, composing the
	// two steps so a single implicit cast suffices during resolution).
	reg.MustRegisterCast(&blade.Cast{From: b.Chronon, To: b.Element, Implicit: true,
		Fn: func(_ *blade.Ctx, v types.Value) (types.Value, error) {
			return b.ElementValue(v.Obj().(temporal.Chronon).Period().Element()), nil
		}})
	reg.MustRegisterCast(&blade.Cast{From: b.Instant, To: b.Element, Implicit: true,
		Fn: func(_ *blade.Ctx, v types.Value) (types.Value, error) {
			i := v.Obj().(temporal.Instant)
			return b.ElementValue(temporal.Period{Start: i, End: i}.Element()), nil
		}})
	// Element → Period (explicit: only a single-period element converts).
	reg.MustRegisterCast(&blade.Cast{From: b.Element, To: b.Period,
		Fn: func(_ *blade.Ctx, v types.Value) (types.Value, error) {
			e := v.Obj().(temporal.Element)
			if e.NumPeriods() != 1 {
				return types.Value{}, fmt.Errorf("element with %d periods does not convert to Period", e.NumPeriods())
			}
			p, _ := e.First()
			return b.PeriodValue(p), nil
		}})
	// Period → Instant casts (explicit: start of the period).
	reg.MustRegisterCast(&blade.Cast{From: b.Period, To: b.Instant,
		Fn: func(_ *blade.Ctx, v types.Value) (types.Value, error) {
			return b.InstantValue(v.Obj().(temporal.Period).Start), nil
		}})
	// DATE bridges: a built-in DATE widens implicitly to a midnight
	// Chronon; the reverse truncates and is explicit.
	reg.MustRegisterCast(&blade.Cast{From: types.TDate, To: b.Chronon, Implicit: true,
		Fn: func(_ *blade.Ctx, v types.Value) (types.Value, error) {
			return b.ChrononValue(types.DateToChronon(v.Int())), nil
		}})
	reg.MustRegisterCast(&blade.Cast{From: b.Chronon, To: types.TDate,
		Fn: func(_ *blade.Ctx, v types.Value) (types.Value, error) {
			return types.NewDate(types.ChrononToDate(v.Obj().(temporal.Chronon))), nil
		}})
	// Span ↔ INT (explicit, seconds).
	reg.MustRegisterCast(&blade.Cast{From: b.Span, To: types.TInt,
		Fn: func(_ *blade.Ctx, v types.Value) (types.Value, error) {
			return types.NewInt(v.Obj().(temporal.Span).Seconds()), nil
		}})
	reg.MustRegisterCast(&blade.Cast{From: types.TInt, To: b.Span,
		Fn: func(_ *blade.Ctx, v types.Value) (types.Value, error) {
			return b.SpanValue(temporal.Span(v.Int())), nil
		}})
	// Chronon ↔ INT (explicit, seconds since epoch) for the layered
	// baseline's flat encoding.
	reg.MustRegisterCast(&blade.Cast{From: b.Chronon, To: types.TInt,
		Fn: func(_ *blade.Ctx, v types.Value) (types.Value, error) {
			return types.NewInt(int64(v.Obj().(temporal.Chronon))), nil
		}})
	reg.MustRegisterCast(&blade.Cast{From: types.TInt, To: b.Chronon,
		Fn: func(_ *blade.Ctx, v types.Value) (types.Value, error) {
			return b.ChrononValue(temporal.Chronon(v.Int())), nil
		}})
}
