package core

import (
	"fmt"

	"tip/internal/blade"
	"tip/internal/temporal"
	"tip/internal/types"
)

// Granularity and restriction routines — the part of the catalogue that
// pushes TIP toward TSQL2's expressive power (the paper's future-work
// direction): civil-field extraction from Chronons, calendar-period
// constructors, and element restriction (temporal slicing).
func (b *Blade) registerGranularity(reg *blade.Registry) {
	rt := func(name string, params []*types.Type, result *types.Type, fn blade.RoutineFn) {
		reg.MustRegisterRoutine(&blade.Routine{
			Name: name, Params: params, Result: result, Strict: true, Fn: fn,
		})
	}

	// Civil-field extraction: year(c), month(c), day(c), hour(c),
	// minute(c), second(c), dow(c) (0 = Sunday).
	field := func(name string, pick func(y, mo, d, h, mi, s int, c temporal.Chronon) int64) {
		rt(name, []*types.Type{b.Chronon}, types.TInt,
			func(_ *blade.Ctx, args []types.Value) (types.Value, error) {
				c := args[0].Obj().(temporal.Chronon)
				y, mo, d, h, mi, s := c.Civil()
				return types.NewInt(pick(y, mo, d, h, mi, s, c)), nil
			})
	}
	field("year", func(y, _, _, _, _, _ int, _ temporal.Chronon) int64 { return int64(y) })
	field("month", func(_, mo, _, _, _, _ int, _ temporal.Chronon) int64 { return int64(mo) })
	field("day", func(_, _, d, _, _, _ int, _ temporal.Chronon) int64 { return int64(d) })
	field("hour", func(_, _, _, h, _, _ int, _ temporal.Chronon) int64 { return int64(h) })
	field("minute", func(_, _, _, _, mi, _ int, _ temporal.Chronon) int64 { return int64(mi) })
	field("second", func(_, _, _, _, _, s int, _ temporal.Chronon) int64 { return int64(s) })
	field("dow", func(_, _, _, _, _, _ int, c temporal.Chronon) int64 {
		return int64(c.Time().Weekday())
	})

	// chronon(y, m, d) and chronon(y, m, d, h, mi, s) constructors.
	rt("chronon", []*types.Type{types.TInt, types.TInt, types.TInt}, b.Chronon,
		func(_ *blade.Ctx, args []types.Value) (types.Value, error) {
			c, err := temporal.MakeChronon(int(args[0].Int()), int(args[1].Int()), int(args[2].Int()), 0, 0, 0)
			if err != nil {
				return types.Value{}, err
			}
			return b.ChrononValue(c), nil
		})
	rt("chronon", []*types.Type{types.TInt, types.TInt, types.TInt, types.TInt, types.TInt, types.TInt}, b.Chronon,
		func(_ *blade.Ctx, args []types.Value) (types.Value, error) {
			c, err := temporal.MakeChronon(
				int(args[0].Int()), int(args[1].Int()), int(args[2].Int()),
				int(args[3].Int()), int(args[4].Int()), int(args[5].Int()))
			if err != nil {
				return types.Value{}, err
			}
			return b.ChrononValue(c), nil
		})

	// span(days) and span(days, hours, minutes, seconds) constructors.
	rt("span", []*types.Type{types.TInt}, b.Span,
		func(_ *blade.Ctx, args []types.Value) (types.Value, error) {
			return b.SpanValue(temporal.Span(args[0].Int()) * temporal.Day), nil
		})
	rt("span", []*types.Type{types.TInt, types.TInt, types.TInt, types.TInt}, b.Span,
		func(_ *blade.Ctx, args []types.Value) (types.Value, error) {
			s := temporal.Span(args[0].Int())*temporal.Day +
				temporal.Span(args[1].Int())*temporal.Hour +
				temporal.Span(args[2].Int())*temporal.Minute +
				temporal.Span(args[3].Int())*temporal.Second
			return b.SpanValue(s), nil
		})

	// Calendar-period constructors: year_of(c), month_of(c), day_of(c)
	// return the enclosing calendar period, handy for grouping by
	// granule: GROUP BY month_of(start(valid)).
	calendar := func(name string, bounds func(y, mo, d int) (temporal.Chronon, temporal.Chronon)) {
		rt(name, []*types.Type{b.Chronon}, b.Period,
			func(_ *blade.Ctx, args []types.Value) (types.Value, error) {
				y, mo, d, _, _, _ := args[0].Obj().(temporal.Chronon).Civil()
				lo, hi := bounds(y, mo, d)
				p, err := temporal.MakePeriod(lo, hi)
				if err != nil {
					return types.Value{}, err
				}
				return b.PeriodValue(p), nil
			})
	}
	calendar("year_of", func(y, _, _ int) (temporal.Chronon, temporal.Chronon) {
		return temporal.MustChronon(y, 1, 1, 0, 0, 0), temporal.MustChronon(y, 12, 31, 23, 59, 59)
	})
	calendar("month_of", func(y, mo, _ int) (temporal.Chronon, temporal.Chronon) {
		lo := temporal.MustChronon(y, mo, 1, 0, 0, 0)
		ny, nm := y, mo+1
		if nm > 12 {
			ny, nm = y+1, 1
		}
		hi, err := temporal.MustChronon(ny, nm, 1, 0, 0, 0).AddSpan(-temporal.Second)
		if err != nil {
			panic(fmt.Sprintf("core: month_of bounds: %v", err))
		}
		return lo, hi
	})
	calendar("day_of", func(y, mo, d int) (temporal.Chronon, temporal.Chronon) {
		return temporal.MustChronon(y, mo, d, 0, 0, 0), temporal.MustChronon(y, mo, d, 23, 59, 59)
	})

	// restrict(e, p): the part of element e inside period p — temporal
	// slicing, the workhorse of time-window analysis.
	rt("restrict", []*types.Type{b.Element, b.Period}, b.Element,
		func(ctx *blade.Ctx, args []types.Value) (types.Value, error) {
			e := args[0].Obj().(temporal.Element)
			p := args[1].Obj().(temporal.Period)
			return b.ElementValue(e.Intersect(p.Element(), ctx.Now)), nil
		})

	// precedes/succeeds for Elements: e1 entirely before/after e2.
	rt("precedes", []*types.Type{b.Element, b.Element}, types.TBool,
		func(ctx *blade.Ctx, args []types.Value) (types.Value, error) {
			e1 := args[0].Obj().(temporal.Element)
			e2 := args[1].Obj().(temporal.Element)
			end1, ok1 := e1.End(ctx.Now)
			start2, ok2 := e2.Start(ctx.Now)
			return types.NewBool(ok1 && ok2 && end1 < start2), nil
		})
	rt("succeeds", []*types.Type{b.Element, b.Element}, types.TBool,
		func(ctx *blade.Ctx, args []types.Value) (types.Value, error) {
			e1 := args[0].Obj().(temporal.Element)
			e2 := args[1].Obj().(temporal.Element)
			start1, ok1 := e1.Start(ctx.Now)
			end2, ok2 := e2.End(ctx.Now)
			return types.NewBool(ok1 && ok2 && start1 > end2), nil
		})

	// gaps(e): the element of gaps between e's periods — useful for
	// "when was the patient NOT on medication within their history".
	rt("gaps", []*types.Type{b.Element}, b.Element,
		func(ctx *blade.Ctx, args []types.Value) (types.Value, error) {
			e := args[0].Obj().(temporal.Element)
			ivs := e.Bind(ctx.Now)
			if len(ivs) < 2 {
				return b.ElementValue(temporal.EmptyElement), nil
			}
			hull, err := temporal.MakePeriod(ivs[0].Lo, ivs[len(ivs)-1].Hi)
			if err != nil {
				return types.Value{}, err
			}
			return b.ElementValue(hull.Element().Difference(e, ctx.Now)), nil
		})
}
