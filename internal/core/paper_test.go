package core_test

// The paper's §2 example statements, executed verbatim (experiments Q1-Q4
// of DESIGN.md). These are the acceptance tests of the TIP DataBlade: the
// exact SQL from the paper must parse, plan and produce the semantics the
// paper describes.

import (
	"strings"
	"testing"

	"tip/internal/blade"
	"tip/internal/core"
	"tip/internal/engine"
	"tip/internal/exec"
	"tip/internal/temporal"
	"tip/internal/types"
)

// testNow pins the transaction clock to 1999-11-12, the paper's era.
var testNow = temporal.MustDate(1999, 11, 12)

// newTestDB builds a TIP-enabled database with a pinned clock and the
// paper's Prescription table.
func newTestDB(t *testing.T) (*engine.Database, *engine.Session, *core.Blade) {
	t.Helper()
	reg := blade.NewRegistry()
	b, err := core.Register(reg)
	if err != nil {
		t.Fatal(err)
	}
	db := engine.New(reg)
	db.SetClock(func() temporal.Chronon { return testNow })
	s := db.NewSession()
	mustExec(t, s, `
		CREATE TABLE Prescription (
			doctor CHAR(20), patient CHAR(20), patientdob Chronon,
			drug CHAR(20), dosage INT, frequency Span, valid Element)`)
	return db, s, b
}

func mustExec(t *testing.T, s *engine.Session, sql string, params ...map[string]types.Value) *exec.Result {
	t.Helper()
	var p map[string]types.Value
	if len(params) > 0 {
		p = params[0]
	}
	res, err := s.Exec(sql, p)
	if err != nil {
		t.Fatalf("Exec(%s): %v", sql, err)
	}
	return res
}

// TestPaperQ1CreateInsert is the paper's CREATE TABLE plus the INSERT of
// Dr. Pepper's long-term Diabeta prescription, with every TIP value
// arriving as a string literal through the automatic casts.
func TestPaperQ1CreateInsert(t *testing.T) {
	_, s, _ := newTestDB(t)
	mustExec(t, s, `INSERT INTO Prescription VALUES
		('Dr.Pepper', 'Mr.Showbiz', '1963-08-13', 'Diabeta', 1, '0 08:00:00', '{[1999-10-01, NOW]}')`)
	res := mustExec(t, s, `SELECT doctor, patient, patientdob, drug, dosage, frequency, valid FROM Prescription`)
	if len(res.Rows) != 1 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	row := res.Rows[0]
	want := []string{"Dr.Pepper", "Mr.Showbiz", "1963-08-13", "Diabeta", "1", "0 08:00:00", "{[1999-10-01, NOW]}"}
	for i, w := range want {
		if got := row[i].Format(); got != w {
			t.Errorf("column %s = %q, want %q", res.Cols[i], got, w)
		}
	}
	// The stored element is a real Element object, not text.
	if _, ok := row[6].Obj().(temporal.Element); !ok {
		t.Errorf("valid column stored as %T", row[6].Obj())
	}
}

func seedMedical(t *testing.T, s *engine.Session) {
	t.Helper()
	stmts := []string{
		// Tylenol when patients were newborn or older.
		`INSERT INTO Prescription VALUES ('Dr.No', 'Baby.Doe', '1999-01-01', 'Tylenol', 1, '1', '{[1999-01-10, 1999-01-20]}')`,
		`INSERT INTO Prescription VALUES ('Dr.No', 'Kid.Roe', '1995-03-01', 'Tylenol', 1, '1', '{[1999-02-01, 1999-02-10]}')`,
		// Diabeta and Aspirin overlapping for Mr.Showbiz, disjoint for Ms.Quiet.
		`INSERT INTO Prescription VALUES ('Dr.Pepper', 'Mr.Showbiz', '1963-08-13', 'Diabeta', 1, '0 08:00:00', '{[1999-10-01, NOW]}')`,
		`INSERT INTO Prescription VALUES ('Dr.Salt', 'Mr.Showbiz', '1963-08-13', 'Aspirin', 2, '0 12:00:00', '{[1999-09-01, 1999-10-15]}')`,
		`INSERT INTO Prescription VALUES ('Dr.Salt', 'Ms.Quiet', '1970-02-02', 'Diabeta', 1, '1', '{[1999-01-01, 1999-02-01]}')`,
		`INSERT INTO Prescription VALUES ('Dr.Salt', 'Ms.Quiet', '1970-02-02', 'Aspirin', 1, '1', '{[1999-03-01, 1999-04-01]}')`,
		// Overlapping prescriptions for the coalescing query.
		`INSERT INTO Prescription VALUES ('Dr.Who', 'Mx.Overlap', '1980-01-01', 'DrugA', 1, '1', '{[1999-01-01, 1999-03-01]}')`,
		`INSERT INTO Prescription VALUES ('Dr.Who', 'Mx.Overlap', '1980-01-01', 'DrugB', 1, '1', '{[1999-02-01, 1999-04-01]}')`,
	}
	for _, q := range stmts {
		mustExec(t, s, q)
	}
}

// TestPaperQ2TylenolAge is the paper's parameterised query: patients
// prescribed Tylenol when they were less than :w weeks old, exercising
// the start routine, Chronon subtraction, the explicit ::Span cast and
// Span * INT.
func TestPaperQ2TylenolAge(t *testing.T) {
	_, s, _ := newTestDB(t)
	seedMedical(t, s)
	query := `
		SELECT patient
		FROM Prescription
		WHERE drug = 'Tylenol'
		AND start(valid) - patientdob < '7 00:00:00'::Span * :w`
	run := func(w int64) []string {
		res := mustExec(t, s, query, map[string]types.Value{"w": types.NewInt(w)})
		var got []string
		for _, r := range res.Rows {
			got = append(got, r[0].Str())
		}
		return got
	}
	// Baby.Doe was 9 days old at prescription start; Kid.Roe ~4 years.
	if got := run(1); len(got) != 0 {
		t.Errorf("w=1 matched %v, want none (9 days ≥ 1 week)", got)
	}
	if got := run(2); len(got) != 1 || got[0] != "Baby.Doe" {
		t.Errorf("w=2 matched %v, want [Baby.Doe]", got)
	}
	if got := run(500); len(got) != 2 {
		t.Errorf("w=500 matched %v, want both Tylenol patients", got)
	}
}

// TestPaperQ3TemporalSelfJoin is the Diabeta/Aspirin self-join: who took
// both simultaneously and exactly when, exercising overlaps and
// intersect on Elements.
func TestPaperQ3TemporalSelfJoin(t *testing.T) {
	_, s, _ := newTestDB(t)
	seedMedical(t, s)
	res := mustExec(t, s, `
		SELECT p1.patient, intersect(p1.valid, p2.valid)
		FROM Prescription p1, Prescription p2
		WHERE p1.drug = 'Diabeta' AND p2.drug = 'Aspirin'
		AND p1.patient = p2.patient
		AND overlaps(p1.valid, p2.valid)`)
	if len(res.Rows) != 1 {
		t.Fatalf("got %d rows, want 1 (only Mr.Showbiz overlaps)", len(res.Rows))
	}
	if got := res.Rows[0][0].Str(); got != "Mr.Showbiz" {
		t.Errorf("patient = %q", got)
	}
	// Diabeta [1999-10-01, NOW] ∩ Aspirin [1999-09-01, 1999-10-15] with
	// NOW = 1999-11-12 is [1999-10-01, 1999-10-15].
	if got := res.Rows[0][1].Format(); got != "{[1999-10-01, 1999-10-15]}" {
		t.Errorf("intersect = %q", got)
	}
}

// TestPaperQ4Coalesce is the coalescing query: total time on prescription
// medication per patient via length(group_union(valid)) — and the paper's
// point that SUM(length(valid)) double-counts overlapping periods.
func TestPaperQ4Coalesce(t *testing.T) {
	_, s, _ := newTestDB(t)
	seedMedical(t, s)
	res := mustExec(t, s, `
		SELECT patient, length(group_union(valid)) AS onmeds
		FROM Prescription
		WHERE patient = 'Mx.Overlap'
		GROUP BY patient`)
	if len(res.Rows) != 1 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	// [1999-01-01, 1999-03-01] ∪ [1999-02-01, 1999-04-01] = [1999-01-01,
	// 1999-04-01]: 90 days.
	coalesced := res.Rows[0][1].Obj().(temporal.Span)
	if coalesced != 90*temporal.Day {
		t.Errorf("coalesced length = %v, want 90 days", coalesced)
	}
	// SUM(length(valid)) counts the February overlap twice.
	res2 := mustExec(t, s, `
		SELECT patient, SUM(length(valid)) AS naive
		FROM Prescription
		WHERE patient = 'Mx.Overlap'
		GROUP BY patient`)
	naive := res2.Rows[0][1].Obj().(temporal.Span)
	if naive != 118*temporal.Day {
		t.Errorf("naive sum = %v, want 118 days", naive)
	}
	if naive <= coalesced {
		t.Error("the paper's point requires SUM(length) > length(group_union)")
	}
}

// TestPaperChrononPlusChrononIsTypeError checks the §2 rule that a
// Chronon plus a Chronon is a type error.
func TestPaperChrononPlusChrononIsTypeError(t *testing.T) {
	_, s, _ := newTestDB(t)
	_, err := s.Exec(`SELECT patientdob + patientdob FROM Prescription`, nil)
	if err == nil {
		t.Skip("no rows, expression never evaluated; insert one row")
	}
}

// TestChrononPlusChrononErrorsWithRows forces evaluation of the invalid
// overload.
func TestChrononPlusChrononErrorsWithRows(t *testing.T) {
	_, s, _ := newTestDB(t)
	seedMedical(t, s)
	_, err := s.Exec(`SELECT patientdob + patientdob FROM Prescription`, nil)
	if err == nil || !strings.Contains(err.Error(), "no overload") {
		t.Errorf("Chronon + Chronon: err = %v, want overload error", err)
	}
}

// TestNowSemantics verifies that a NOW-relative query changes its answer
// as the clock advances even though the data is unchanged (experiment E4).
func TestNowSemantics(t *testing.T) {
	db, s, _ := newTestDB(t)
	seedMedical(t, s)
	q := `SELECT patient FROM Prescription WHERE drug = 'Diabeta' AND contains(valid, now())`
	res := mustExec(t, s, q)
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "Mr.Showbiz" {
		t.Fatalf("in 1999, rows = %v", res.Rows)
	}
	// Years later, the open prescription {[1999-10-01, NOW]} still
	// covers NOW — it grows with time.
	db.SetClock(func() temporal.Chronon { return temporal.MustDate(2005, 6, 1) })
	res = mustExec(t, s, q)
	if len(res.Rows) != 1 {
		t.Fatalf("in 2005, rows = %d, want 1", len(res.Rows))
	}
	// Before the prescription started, it covers nothing.
	db.SetClock(func() temporal.Chronon { return temporal.MustDate(1999, 9, 1) })
	res = mustExec(t, s, q)
	if len(res.Rows) != 0 {
		t.Fatalf("in Sep 1999, rows = %d, want 0", len(res.Rows))
	}
}

// TestSetNowWhatIf exercises the Browser's what-if facility: SET NOW
// overrides the interpretation of NOW for the session.
func TestSetNowWhatIf(t *testing.T) {
	_, s, _ := newTestDB(t)
	seedMedical(t, s)
	q := `SELECT patient FROM Prescription WHERE drug = 'Diabeta' AND contains(valid, now())`
	mustExec(t, s, `SET NOW = '2005-06-01'`)
	res := mustExec(t, s, q)
	if len(res.Rows) != 1 {
		t.Fatalf("override 2005: rows = %d, want 1", len(res.Rows))
	}
	mustExec(t, s, `SET NOW = '1999-09-01'`)
	res = mustExec(t, s, q)
	if len(res.Rows) != 0 {
		t.Fatalf("override Sep 1999: rows = %d, want 0", len(res.Rows))
	}
	mustExec(t, s, `SET NOW = DEFAULT`)
	res = mustExec(t, s, q)
	if len(res.Rows) != 1 {
		t.Fatalf("default clock: rows = %d, want 1", len(res.Rows))
	}
}
