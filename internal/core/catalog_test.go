package core_test

// Catalogue sweep: every TIP routine, operator overload and cast of §2,
// exercised through SQL. One table-driven test per catalogue area keeps
// each row a distinct behaviour.

import (
	"strings"
	"testing"
)

// evalCases runs single-value queries against a fresh pinned database.
func evalCases(t *testing.T, cases [][2]string) {
	t.Helper()
	_, s, _ := newTestDB(t)
	for _, c := range cases {
		res, err := s.Exec(c[0], nil)
		if err != nil {
			t.Errorf("%s: %v", c[0], err)
			continue
		}
		if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
			t.Errorf("%s: shape %dx%d", c[0], len(res.Rows), len(res.Cols))
			continue
		}
		if got := res.Rows[0][0].Format(); got != c[1] {
			t.Errorf("%s = %s, want %s", c[0], got, c[1])
		}
	}
}

func TestSpanOperators(t *testing.T) {
	evalCases(t, [][2]string{
		{`SELECT '7'::Span + '0 12:00:00'::Span`, "7 12:00:00"},
		{`SELECT '7'::Span - '1'::Span`, "6"},
		{`SELECT '7'::Span * 2`, "14"},
		{`SELECT 2 * '7'::Span`, "14"},
		{`SELECT '7'::Span * 0.5`, "3 12:00:00"},
		{`SELECT '7'::Span / 7`, "1"},
		{`SELECT '14'::Span / '7'::Span`, "2.0"},
		{`SELECT -('7'::Span)`, "-7"},
		{`SELECT '7'::Span > '6'::Span`, "TRUE"},
		{`SELECT '-7'::Span < '0'::Span`, "TRUE"},
	})
}

func TestChrononOperators(t *testing.T) {
	evalCases(t, [][2]string{
		{`SELECT '1999-01-01'::Chronon + '7'::Span`, "1999-01-08"},
		{`SELECT '7'::Span + '1999-01-01'::Chronon`, "1999-01-08"},
		{`SELECT '1999-01-08'::Chronon - '7'::Span`, "1999-01-01"},
		{`SELECT '1999-01-08'::Chronon - '1999-01-01'::Chronon`, "7"},
		{`SELECT '1999-01-01'::Chronon < '1999-01-02'::Chronon`, "TRUE"},
		{`SELECT '1999-01-01'::Chronon = '1999-01-01 00:00:00'::Chronon`, "TRUE"},
		{`SELECT now()`, "1999-11-12"},
	})
}

func TestInstantOperators(t *testing.T) {
	evalCases(t, [][2]string{
		{`SELECT 'NOW'::Instant + '7'::Span`, "NOW+7"},
		{`SELECT 'NOW'::Instant - '1'::Span`, "NOW-1"},
		// Instant subtraction binds NOW (pinned to 1999-11-12).
		{`SELECT 'NOW'::Instant - '1999-11-05'::Chronon::Instant`, "7"},
		// The paper's time-dependent comparison: NOW-1 vs a chronon.
		{`SELECT 'NOW-1'::Instant = '1999-11-11'::Chronon`, "TRUE"},
		{`SELECT 'NOW-1'::Instant < '2000-01-01'::Chronon`, "TRUE"},
		// Explicit Instant → Chronon cast substitutes NOW.
		{`SELECT 'NOW-1'::Instant::Chronon`, "1999-11-11"},
		{`SELECT bind('NOW-1'::Instant)`, "1999-11-11"},
	})
}

func TestPeriodRoutines(t *testing.T) {
	evalCases(t, [][2]string{
		{`SELECT start('[1999-01-01, 1999-06-01]'::Period)`, "1999-01-01"},
		{`SELECT end('[1999-01-01, 1999-06-01]'::Period)`, "1999-06-01"},
		{`SELECT start('[NOW-7, NOW]'::Period)`, "1999-11-05"},
		{`SELECT rawstart('[NOW-7, NOW]'::Period)`, "NOW-7"},
		{`SELECT rawend('[NOW-7, NOW]'::Period)`, "NOW"},
		{`SELECT length('[1999-01-01, 1999-01-08]'::Period)`, "7"},
		{`SELECT period('1999-01-01'::Chronon, 'NOW'::Instant)`, "[1999-01-01, NOW]"},
		{`SELECT bind('[1999-01-01, NOW]'::Period)`, "[1999-01-01, 1999-11-12]"},
		{`SELECT '[1999-01-01, 1999-02-01]'::Period + '7'::Span`, "[1999-01-08, 1999-02-08]"},
		{`SELECT '[1999-01-08, 1999-02-08]'::Period - '7'::Span`, "[1999-01-01, 1999-02-01]"},
	})
}

func TestAllenRoutinesInSQL(t *testing.T) {
	p := func(s string) string { return `'` + s + `'::Period` }
	jan := p("[1999-01-01, 1999-01-31]")
	feb := p("[1999-02-01, 1999-02-28]")
	q1 := p("[1999-01-01, 1999-03-31]")
	midJan := p("[1999-01-10, 1999-01-20]")
	evalCases(t, [][2]string{
		{`SELECT before(` + jan + `, ` + p("[1999-03-01, 1999-03-31]") + `)`, "TRUE"},
		// jan ends at *midnight* Jan 31, so a whole day of chronons
		// separates it from feb: strictly after, not met_by.
		{`SELECT after(` + feb + `, ` + jan + `)`, "TRUE"},
		{`SELECT meets(` + p("[1999-01-01, 1999-01-31 23:59:59]") + `, ` + feb + `)`, "TRUE"},
		{`SELECT met_by(` + feb + `, ` + p("[1999-01-01, 1999-01-31 23:59:59]") + `)`, "TRUE"},
		{`SELECT starts(` + jan + `, ` + q1 + `)`, "TRUE"},
		{`SELECT started_by(` + q1 + `, ` + jan + `)`, "TRUE"},
		{`SELECT during(` + midJan + `, ` + jan + `)`, "TRUE"},
		{`SELECT finishes(` + p("[1999-03-01, 1999-03-31]") + `, ` + q1 + `)`, "TRUE"},
		{`SELECT finished_by(` + q1 + `, ` + p("[1999-03-01, 1999-03-31]") + `)`, "TRUE"},
		{`SELECT equals(` + jan + `, ` + jan + `)`, "TRUE"},
		{`SELECT allen_overlaps(` + p("[1999-01-01, 1999-02-10]") + `, ` + feb + `)`, "TRUE"},
		{`SELECT allen_overlapped_by(` + feb + `, ` + p("[1999-01-01, 1999-02-10]") + `)`, "TRUE"},
		{`SELECT allen_contains(` + jan + `, ` + midJan + `)`, "TRUE"},
		{`SELECT allen(` + jan + `, ` + feb + `)`, "before"},
		{`SELECT allen(` + p("[1999-01-01, 1999-01-31 23:59:59]") + `, ` + feb + `)`, "meets"},
		{`SELECT allen(` + midJan + `, ` + jan + `)`, "during"},
	})
}

func TestElementRoutinesInSQL(t *testing.T) {
	e1 := `'{[1999-01-01, 1999-03-01], [1999-06-01, 1999-08-01]}'::Element`
	e2 := `'{[1999-02-01, 1999-07-01]}'::Element`
	evalCases(t, [][2]string{
		{`SELECT union(` + e1 + `, ` + e2 + `)`, "{[1999-01-01, 1999-08-01]}"},
		{`SELECT intersect(` + e1 + `, ` + e2 + `)`,
			"{[1999-02-01, 1999-03-01], [1999-06-01, 1999-07-01]}"},
		{`SELECT difference(` + e1 + `, ` + e2 + `)`,
			"{[1999-01-01, 1999-01-31 23:59:59], [1999-07-01 00:00:01, 1999-08-01]}"},
		{`SELECT overlaps(` + e1 + `, ` + e2 + `)`, "TRUE"},
		{`SELECT contains(` + e1 + `, '{[1999-01-10, 1999-01-20]}'::Element)`, "TRUE"},
		{`SELECT contains(` + e1 + `, '1999-06-15'::Chronon)`, "TRUE"},
		{`SELECT contains(` + e1 + `, '1999-04-01'::Chronon)`, "FALSE"},
		{`SELECT length(` + e1 + `)`, "120"},
		{`SELECT start(` + e1 + `)`, "1999-01-01"},
		{`SELECT end(` + e1 + `)`, "1999-08-01"},
		{`SELECT first(` + e1 + `)`, "[1999-01-01, 1999-03-01]"},
		{`SELECT last(` + e1 + `)`, "[1999-06-01, 1999-08-01]"},
		{`SELECT nperiods(` + e1 + `)`, "2"},
		{`SELECT isempty('{}'::Element)`, "TRUE"},
		{`SELECT isempty(` + e1 + `)`, "FALSE"},
		{`SELECT bind('{[1999-10-01, NOW]}'::Element)`, "{[1999-10-01, 1999-11-12]}"},
		{`SELECT ` + e1 + ` + '7'::Span`,
			"{[1999-01-08, 1999-03-08], [1999-06-08, 1999-08-08]}"},
		{`SELECT ` + e1 + ` - '7'::Span`,
			"{[1998-12-25, 1999-02-22], [1999-05-25, 1999-07-25]}"},
		{`SELECT ` + e1 + ` = ` + e1, "TRUE"},
		{`SELECT ` + e1 + ` <> ` + e2, "TRUE"},
		// A NOW-relative element that denotes the empty set today.
		{`SELECT isempty('{[2005-01-01, NOW]}'::Element)`, "TRUE"},
		{`SELECT start('{}'::Element)`, "NULL"},
		{`SELECT complement('{}'::Element)`, "{[0001-01-01, 9999-12-31 23:59:59]}"},
	})
}

func TestCastCatalogue(t *testing.T) {
	evalCases(t, [][2]string{
		// Widening (implicit casts also fire in routine resolution).
		{`SELECT '1999-01-01'::Chronon::Period`, "[1999-01-01, 1999-01-01]"},
		{`SELECT '1999-01-01'::Chronon::Element`, "{[1999-01-01, 1999-01-01]}"},
		{`SELECT 'NOW'::Instant::Period`, "[NOW, NOW]"},
		{`SELECT 'NOW'::Instant::Element`, "{[NOW, NOW]}"},
		{`SELECT '[1999-01-01, 1999-02-01]'::Period::Element`, "{[1999-01-01, 1999-02-01]}"},
		// Narrowing (explicit only).
		{`SELECT '{[1999-01-01, 1999-02-01]}'::Element::Period`, "[1999-01-01, 1999-02-01]"},
		{`SELECT '[1999-01-01, 1999-02-01]'::Period::Instant`, "1999-01-01"},
		// DATE bridges.
		{`SELECT '1999-11-12'::DATE::Chronon`, "1999-11-12"},
		{`SELECT '1999-11-12 13:00:00'::Chronon::DATE`, "1999-11-12"},
		// Seconds bridges for the layered encoding.
		{`SELECT '0 00:01:00'::Span::INT`, "60"},
		{`SELECT 60::Span`, "0 00:01:00"},
		{`SELECT 0::Chronon`, "1970-01-01"},
		{`SELECT '1970-01-01'::Chronon::INT`, "0"},
		// Text casts both ways.
		{`SELECT '{[1999-01-01, 1999-02-01]}'::Element::VARCHAR`, "{[1999-01-01, 1999-02-01]}"},
		// Implicit widening also applies in mixed routine calls:
		// overlaps(Element, Period literal).
		{`SELECT overlaps('{[1999-01-01, 1999-03-01]}'::Element, '[1999-02-01, 1999-04-01]'::Period)`, "TRUE"},
	})
}

func TestCastErrors(t *testing.T) {
	_, s, _ := newTestDB(t)
	cases := []string{
		`SELECT '{[1999-01-01, 1999-02-01], [1999-05-01, 1999-06-01]}'::Element::Period`,
		`SELECT 'garbage'::Chronon`,
		`SELECT '1999-13-01'::Chronon`,
		`SELECT '{oops'::Element`,
	}
	for _, q := range cases {
		if _, err := s.Exec(q, nil); err == nil {
			t.Errorf("%s should fail", q)
		}
	}
}

func TestAggregateCatalogue(t *testing.T) {
	_, s, _ := newTestDB(t)
	mustExec(t, s, `CREATE TABLE t (k INT, e Element, sp Span)`)
	mustExec(t, s, `INSERT INTO t VALUES
		(1, '{[1999-01-01, 1999-02-01]}', '1'),
		(1, '{[1999-01-15, 1999-03-01]}', '2'),
		(1, '{[1999-06-01, 1999-07-01]}', '3'),
		(2, NULL, NULL)`)
	res := mustExec(t, s, `
		SELECT group_union(e), group_intersect(e), SUM(sp), AVG(sp), MIN(sp), MAX(sp)
		FROM t WHERE k = 1`)
	row := res.Rows[0]
	if got := row[0].Format(); got != "{[1999-01-01, 1999-03-01], [1999-06-01, 1999-07-01]}" {
		t.Errorf("group_union = %s", got)
	}
	if got := row[1].Format(); got != "{}" {
		t.Errorf("group_intersect = %s", got)
	}
	if got := row[2].Format(); got != "6" {
		t.Errorf("SUM(span) = %s", got)
	}
	if got := row[3].Format(); got != "2" {
		t.Errorf("AVG(span) = %s", got)
	}
	if got := row[4].Format(); got != "1" || row[5].Format() != "3" {
		t.Errorf("MIN/MAX(span) = %s/%s", got, row[5].Format())
	}
	// Aggregates over all-NULL groups yield NULL.
	res = mustExec(t, s, `SELECT group_union(e) FROM t WHERE k = 2`)
	if !res.Rows[0][0].Null {
		t.Errorf("group_union over NULLs = %v", res.Rows[0][0].Format())
	}
	// group_union accepts Periods through the implicit cast.
	mustExec(t, s, `CREATE TABLE p (pp Period)`)
	mustExec(t, s, `INSERT INTO p VALUES ('[1999-01-01, 1999-02-01]'), ('[1999-01-20, 1999-03-01]')`)
	res = mustExec(t, s, `SELECT group_union(pp) FROM p`)
	if got := res.Rows[0][0].Format(); got != "{[1999-01-01, 1999-03-01]}" {
		t.Errorf("group_union over periods = %s", got)
	}
}

func TestTypeErrorsFromTheCatalogue(t *testing.T) {
	_, s, _ := newTestDB(t)
	cases := []string{
		`SELECT '1999-01-01'::Chronon + '1999-01-01'::Chronon`, // the paper's example
		`SELECT '7'::Span + 1`,
		`SELECT length(42)`,
		`SELECT union('{[1999-01-01, 1999-02-01]}'::Element)`, // wrong arity
		`SELECT '{}'::Element < '{}'::Element`,                // elements have no order
	}
	for _, q := range cases {
		if _, err := s.Exec(q, nil); err == nil {
			t.Errorf("%s should be a type error", q)
		} else if !strings.Contains(err.Error(), "overload") &&
			!strings.Contains(err.Error(), "ordering") &&
			!strings.Contains(err.Error(), "compare") {
			t.Errorf("%s: unexpected error text %v", q, err)
		}
	}
}
