package blade

import (
	"fmt"
	"strconv"
	"strings"

	"tip/internal/types"
)

// Engine built-ins, registered through the public blade API so the
// extension machinery carries every query's arithmetic, not just the
// temporal routines.

func (r *Registry) registerBuiltinRoutines() {
	intBin := func(name string, f func(a, b int64) (int64, error)) {
		r.MustRegisterRoutine(&Routine{
			Name: name, Params: []*types.Type{types.TInt, types.TInt},
			Result: types.TInt, Strict: true,
			Fn: func(_ *Ctx, args []types.Value) (types.Value, error) {
				v, err := f(args[0].Int(), args[1].Int())
				if err != nil {
					return types.Value{}, err
				}
				return types.NewInt(v), nil
			}})
	}
	floatBin := func(name string, f func(a, b float64) (float64, error)) {
		r.MustRegisterRoutine(&Routine{
			Name: name, Params: []*types.Type{types.TFloat, types.TFloat},
			Result: types.TFloat, Strict: true,
			Fn: func(_ *Ctx, args []types.Value) (types.Value, error) {
				v, err := f(args[0].Float(), args[1].Float())
				if err != nil {
					return types.Value{}, err
				}
				return types.NewFloat(v), nil
			}})
	}

	intBin("+", func(a, b int64) (int64, error) { return a + b, nil })
	intBin("-", func(a, b int64) (int64, error) { return a - b, nil })
	intBin("*", func(a, b int64) (int64, error) { return a * b, nil })
	intBin("/", func(a, b int64) (int64, error) {
		if b == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		return a / b, nil
	})
	intBin("%", func(a, b int64) (int64, error) {
		if b == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		return a % b, nil
	})
	floatBin("+", func(a, b float64) (float64, error) { return a + b, nil })
	floatBin("-", func(a, b float64) (float64, error) { return a - b, nil })
	floatBin("*", func(a, b float64) (float64, error) { return a * b, nil })
	floatBin("/", func(a, b float64) (float64, error) {
		if b == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		return a / b, nil
	})

	r.MustRegisterRoutine(&Routine{
		Name: "||", Params: []*types.Type{types.TString, types.TString},
		Result: types.TString, Strict: true,
		Fn: func(_ *Ctx, args []types.Value) (types.Value, error) {
			return types.NewString(args[0].Str() + args[1].Str()), nil
		}})

	r.MustRegisterRoutine(&Routine{
		Name: "upper", Params: []*types.Type{types.TString},
		Result: types.TString, Strict: true,
		Fn: func(_ *Ctx, args []types.Value) (types.Value, error) {
			return types.NewString(strings.ToUpper(args[0].Str())), nil
		}})
	r.MustRegisterRoutine(&Routine{
		Name: "lower", Params: []*types.Type{types.TString},
		Result: types.TString, Strict: true,
		Fn: func(_ *Ctx, args []types.Value) (types.Value, error) {
			return types.NewString(strings.ToLower(args[0].Str())), nil
		}})
	r.MustRegisterRoutine(&Routine{
		Name: "trim", Params: []*types.Type{types.TString},
		Result: types.TString, Strict: true,
		Fn: func(_ *Ctx, args []types.Value) (types.Value, error) {
			return types.NewString(strings.TrimSpace(args[0].Str())), nil
		}})
	r.MustRegisterRoutine(&Routine{
		Name: "char_length", Params: []*types.Type{types.TString},
		Result: types.TInt, Strict: true,
		Fn: func(_ *Ctx, args []types.Value) (types.Value, error) {
			return types.NewInt(int64(len(args[0].Str()))), nil
		}})
	r.MustRegisterRoutine(&Routine{
		Name: "abs", Params: []*types.Type{types.TInt},
		Result: types.TInt, Strict: true,
		Fn: func(_ *Ctx, args []types.Value) (types.Value, error) {
			v := args[0].Int()
			if v < 0 {
				v = -v
			}
			return types.NewInt(v), nil
		}})
	r.MustRegisterRoutine(&Routine{
		Name: "abs", Params: []*types.Type{types.TFloat},
		Result: types.TFloat, Strict: true,
		Fn: func(_ *Ctx, args []types.Value) (types.Value, error) {
			v := args[0].Float()
			if v < 0 {
				v = -v
			}
			return types.NewFloat(v), nil
		}})

	// greatest/least over INT pairs, handy for the layered baseline's
	// interval clipping SQL.
	r.MustRegisterRoutine(&Routine{
		Name: "greatest", Params: []*types.Type{types.TInt, types.TInt},
		Result: types.TInt, Strict: true,
		Fn: func(_ *Ctx, args []types.Value) (types.Value, error) {
			a, b := args[0].Int(), args[1].Int()
			if a > b {
				return types.NewInt(a), nil
			}
			return types.NewInt(b), nil
		}})
	r.MustRegisterRoutine(&Routine{
		Name: "least", Params: []*types.Type{types.TInt, types.TInt},
		Result: types.TInt, Strict: true,
		Fn: func(_ *Ctx, args []types.Value) (types.Value, error) {
			a, b := args[0].Int(), args[1].Int()
			if a < b {
				return types.NewInt(a), nil
			}
			return types.NewInt(b), nil
		}})
}

func (r *Registry) registerBuiltinCasts() {
	r.MustRegisterCast(&Cast{From: types.TInt, To: types.TFloat, Implicit: true,
		Fn: func(_ *Ctx, v types.Value) (types.Value, error) {
			return types.NewFloat(float64(v.Int())), nil
		}})
	r.MustRegisterCast(&Cast{From: types.TFloat, To: types.TInt,
		Fn: func(_ *Ctx, v types.Value) (types.Value, error) {
			return types.NewInt(int64(v.Float())), nil
		}})
	r.MustRegisterCast(&Cast{From: types.TString, To: types.TInt,
		Fn: func(_ *Ctx, v types.Value) (types.Value, error) {
			n, err := strconv.ParseInt(strings.TrimSpace(v.Str()), 10, 64)
			if err != nil {
				return types.Value{}, fmt.Errorf("bad INT literal %q", v.Str())
			}
			return types.NewInt(n), nil
		}})
	r.MustRegisterCast(&Cast{From: types.TString, To: types.TFloat,
		Fn: func(_ *Ctx, v types.Value) (types.Value, error) {
			f, err := strconv.ParseFloat(strings.TrimSpace(v.Str()), 64)
			if err != nil {
				return types.Value{}, fmt.Errorf("bad FLOAT literal %q", v.Str())
			}
			return types.NewFloat(f), nil
		}})
	r.MustRegisterCast(&Cast{From: types.TInt, To: types.TString,
		Fn: func(_ *Ctx, v types.Value) (types.Value, error) {
			return types.NewString(strconv.FormatInt(v.Int(), 10)), nil
		}})
	r.MustRegisterCast(&Cast{From: types.TFloat, To: types.TString,
		Fn: func(_ *Ctx, v types.Value) (types.Value, error) {
			return types.NewString(v.Format()), nil
		}})
	r.MustRegisterCast(&Cast{From: types.TBool, To: types.TString,
		Fn: func(_ *Ctx, v types.Value) (types.Value, error) {
			return types.NewString(v.Format()), nil
		}})
	r.MustRegisterCast(&Cast{From: types.TString, To: types.TDate, Implicit: true,
		Fn: func(_ *Ctx, v types.Value) (types.Value, error) {
			d, err := types.ParseDate(v.Str())
			if err != nil {
				return types.Value{}, err
			}
			return types.NewDate(d), nil
		}})
	r.MustRegisterCast(&Cast{From: types.TDate, To: types.TString,
		Fn: func(_ *Ctx, v types.Value) (types.Value, error) {
			return types.NewString(v.Format()), nil
		}})
}
