// Package blade implements the engine's extension API — the analogue of
// the Informix DataBlade API that TIP is built on. A blade registers
// user-defined types (with parse/format/codec hooks), routines and
// operator overloads, implicit and explicit casts, and user-defined
// aggregates. Once registered they are indistinguishable from built-ins:
// the SQL executor resolves every function call, operator and cast through
// the blade registry.
//
// The engine's own built-in behaviour (integer arithmetic, string
// concatenation, …) is registered through this same API (see builtins.go),
// so the extension machinery is exercised by every query.
package blade

import (
	"fmt"
	"sort"
	"strings"

	"tip/internal/temporal"
	"tip/internal/types"
)

// Ctx carries the evaluation context a routine may consult: the concrete
// value of NOW (the current transaction time, possibly overridden by the
// session for what-if analysis).
type Ctx struct {
	Now temporal.Chronon
}

// RoutineFn is the implementation of one routine overload.
type RoutineFn func(ctx *Ctx, args []types.Value) (types.Value, error)

// Routine is one overload of a named routine or operator. Operators are
// routines whose name is the operator symbol ("+", "=", …).
type Routine struct {
	// Name is the routine's SQL name; lookup is case-insensitive.
	Name string
	// Params are the formal parameter types.
	Params []*types.Type
	// Result is the routine's static result type. A nil Result marks a
	// polymorphic routine whose result type depends on its inputs.
	Result *types.Type
	// Strict routines are not invoked on NULL input: a typed NULL of the
	// Result type is produced instead. Virtually all TIP routines are
	// strict.
	Strict bool
	// Fn evaluates the routine.
	Fn RoutineFn
}

// CastFn converts one value to a target type.
type CastFn func(ctx *Ctx, v types.Value) (types.Value, error)

// Cast is a conversion edge in the cast graph.
type Cast struct {
	From, To *types.Type
	// Implicit casts are applied automatically during overload
	// resolution and assignment; explicit casts require ::T or CAST.
	Implicit bool
	Fn       CastFn
}

// AggState accumulates one group's input for a user-defined aggregate.
type AggState interface {
	// Step folds one non-NULL input value into the state.
	Step(ctx *Ctx, v types.Value) error
	// Final produces the aggregate result for the group.
	Final(ctx *Ctx) (types.Value, error)
}

// Aggregate is one overload of a named user-defined aggregate, such as
// TIP's group_union.
type Aggregate struct {
	Name string
	// Param is the formal input type.
	Param *types.Type
	// Result is the aggregate's result type.
	Result *types.Type
	// New returns a fresh accumulator for a group.
	New func() AggState
}

// Registry holds every registered type, routine, cast and aggregate. A
// fresh Registry already contains the engine built-ins; blades add to it.
type Registry struct {
	typesByName map[string]*types.Type // upper-cased name → type
	routines    map[string][]*Routine  // lower-cased name → overloads
	casts       map[castKey]*Cast
	aggregates  map[string][]*Aggregate
}

type castKey struct{ from, to *types.Type }

// NewRegistry returns a registry pre-populated with the engine's built-in
// types, operators and casts.
func NewRegistry() *Registry {
	r := &Registry{
		typesByName: make(map[string]*types.Type),
		routines:    make(map[string][]*Routine),
		casts:       make(map[castKey]*Cast),
		aggregates:  make(map[string][]*Aggregate),
	}
	r.registerBuiltinTypes()
	r.registerBuiltinRoutines()
	r.registerBuiltinCasts()
	return r
}

func (r *Registry) registerBuiltinTypes() {
	for _, t := range []*types.Type{types.TInt, types.TFloat, types.TBool, types.TString, types.TDate} {
		r.typesByName[t.Name] = t
	}
	// SQL spelling aliases.
	alias := map[string]*types.Type{
		"INTEGER": types.TInt, "BIGINT": types.TInt, "SMALLINT": types.TInt,
		"REAL": types.TFloat, "DOUBLE": types.TFloat, "DECIMAL": types.TFloat,
		"NUMERIC": types.TFloat, "BOOL": types.TBool,
		"CHAR": types.TString, "TEXT": types.TString, "STRING": types.TString,
	}
	for name, t := range alias {
		r.typesByName[name] = t
	}
}

// RegisterType interns a UDT and returns its *Type. Registering also
// installs the automatic string casts the paper describes: an implicit
// VARCHAR→T cast via the type's Parse hook (so SQL string literals convert
// automatically) and an explicit T→VARCHAR cast via Format.
func (r *Registry) RegisterType(udt *types.UDT) (*types.Type, error) {
	key := strings.ToUpper(udt.Name)
	if _, ok := r.typesByName[key]; ok {
		return nil, fmt.Errorf("blade: type %s already registered", udt.Name)
	}
	t := &types.Type{Name: udt.Name, Kind: types.KindUDT, UDT: udt}
	r.typesByName[key] = t
	r.MustRegisterCast(&Cast{From: types.TString, To: t, Implicit: true,
		Fn: func(_ *Ctx, v types.Value) (types.Value, error) {
			obj, err := udt.Parse(v.Str())
			if err != nil {
				return types.Value{}, err
			}
			return types.NewUDT(t, obj), nil
		}})
	r.MustRegisterCast(&Cast{From: t, To: types.TString,
		Fn: func(_ *Ctx, v types.Value) (types.Value, error) {
			return types.NewString(udt.Format(v.Obj())), nil
		}})
	return t, nil
}

// MustRegisterType is RegisterType that panics on conflict; for blade
// initialisation code.
func (r *Registry) MustRegisterType(udt *types.UDT) *types.Type {
	t, err := r.RegisterType(udt)
	if err != nil {
		panic(err)
	}
	return t
}

// LookupType resolves a SQL type name (case-insensitive).
func (r *Registry) LookupType(name string) (*types.Type, bool) {
	t, ok := r.typesByName[strings.ToUpper(name)]
	return t, ok
}

// TypeNames returns the registered type names, sorted, for introspection.
func (r *Registry) TypeNames() []string {
	out := make([]string, 0, len(r.typesByName))
	for n := range r.typesByName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RegisterRoutine adds one routine overload. An overload with identical
// parameter types as an existing one is rejected.
func (r *Registry) RegisterRoutine(rt *Routine) error {
	key := strings.ToLower(rt.Name)
	for _, ex := range r.routines[key] {
		if sameParams(ex.Params, rt.Params) {
			return fmt.Errorf("blade: routine %s%s already registered", rt.Name, typeList(rt.Params))
		}
	}
	r.routines[key] = append(r.routines[key], rt)
	return nil
}

// MustRegisterRoutine is RegisterRoutine that panics on conflict.
func (r *Registry) MustRegisterRoutine(rt *Routine) {
	if err := r.RegisterRoutine(rt); err != nil {
		panic(err)
	}
}

// HasRoutine reports whether any overload is registered under name.
func (r *Registry) HasRoutine(name string) bool {
	return len(r.routines[strings.ToLower(name)]) > 0
}

// RegisterCast adds a conversion edge.
func (r *Registry) RegisterCast(c *Cast) error {
	k := castKey{c.From, c.To}
	if _, ok := r.casts[k]; ok {
		return fmt.Errorf("blade: cast %s→%s already registered", c.From, c.To)
	}
	r.casts[k] = c
	return nil
}

// MustRegisterCast is RegisterCast that panics on conflict.
func (r *Registry) MustRegisterCast(c *Cast) {
	if err := r.RegisterCast(c); err != nil {
		panic(err)
	}
}

// LookupCast finds the conversion edge from → to, if any.
func (r *Registry) LookupCast(from, to *types.Type) (*Cast, bool) {
	c, ok := r.casts[castKey{from, to}]
	return c, ok
}

// RegisterAggregate adds one aggregate overload.
func (r *Registry) RegisterAggregate(a *Aggregate) error {
	key := strings.ToLower(a.Name)
	for _, ex := range r.aggregates[key] {
		if ex.Param == a.Param {
			return fmt.Errorf("blade: aggregate %s(%s) already registered", a.Name, a.Param)
		}
	}
	r.aggregates[key] = append(r.aggregates[key], a)
	return nil
}

// MustRegisterAggregate is RegisterAggregate that panics on conflict.
func (r *Registry) MustRegisterAggregate(a *Aggregate) {
	if err := r.RegisterAggregate(a); err != nil {
		panic(err)
	}
}

// HasAggregate reports whether any overload is registered under name.
func (r *Registry) HasAggregate(name string) bool {
	return len(r.aggregates[strings.ToLower(name)]) > 0
}

// ResolveAggregate picks the aggregate overload for the given input type,
// applying at most one implicit cast. The returned cast is nil when the
// input type matches exactly.
func (r *Registry) ResolveAggregate(name string, arg *types.Type) (*Aggregate, *Cast, error) {
	overloads := r.aggregates[strings.ToLower(name)]
	if len(overloads) == 0 {
		return nil, nil, fmt.Errorf("blade: unknown aggregate %s", name)
	}
	for _, a := range overloads {
		if a.Param == arg {
			return a, nil, nil
		}
	}
	var best *Aggregate
	var bestCast *Cast
	for _, a := range overloads {
		if c, ok := r.LookupCast(arg, a.Param); ok && c.Implicit {
			if best != nil {
				return nil, nil, fmt.Errorf("blade: ambiguous aggregate %s(%s)", name, arg)
			}
			best, bestCast = a, c
		}
	}
	if best == nil {
		return nil, nil, fmt.Errorf("blade: no overload of aggregate %s accepts %s", name, arg)
	}
	return best, bestCast, nil
}

// ResolveExact finds the overload of name whose parameter types equal the
// argument types exactly (no implicit casts considered). It is used by
// the executor's comparison dispatch, where a blade-registered exact
// overload must win but cast-based overloads must not hijack built-in
// comparisons (e.g. VARCHAR = VARCHAR must stay a string comparison even
// though strings cast implicitly to Element).
func (r *Registry) ResolveExact(name string, args []*types.Type) (*Resolution, bool) {
	for _, rt := range r.routines[strings.ToLower(name)] {
		if sameParams(rt.Params, args) {
			return &Resolution{Routine: rt, Casts: make([]*Cast, len(args))}, true
		}
	}
	return nil, false
}

// Resolution is the outcome of overload resolution: the selected routine
// and the implicit casts (nil entries mean no cast) to apply to each
// argument before invocation.
type Resolution struct {
	Routine *Routine
	Casts   []*Cast
}

// Resolve picks the best overload of name for the given argument types,
// mirroring Informix routine resolution: exact parameter matches score
// higher than implicit-cast matches; the highest-scoring overload wins; a
// tie is an ambiguity error. A NULL argument (type NULL, from the literal
// NULL or an untyped parameter) matches any parameter type.
func (r *Registry) Resolve(name string, args []*types.Type) (*Resolution, error) {
	overloads := r.routines[strings.ToLower(name)]
	if len(overloads) == 0 {
		return nil, fmt.Errorf("blade: unknown routine %s", name)
	}
	const (
		exactScore = 2
		castScore  = 1
	)
	var best *Resolution
	bestScore, tie := -1, false
	for _, rt := range overloads {
		if len(rt.Params) != len(args) {
			continue
		}
		score := 0
		casts := make([]*Cast, len(args))
		ok := true
		for i, formal := range rt.Params {
			actual := args[i]
			switch {
			case actual == formal:
				score += exactScore
			case actual.Kind == types.KindNull:
				score += exactScore // NULL matches anything
			default:
				c, found := r.LookupCast(actual, formal)
				if !found || !c.Implicit {
					ok = false
				} else {
					casts[i] = c
					score += castScore
				}
			}
			if !ok {
				break
			}
		}
		if !ok {
			continue
		}
		switch {
		case score > bestScore:
			best = &Resolution{Routine: rt, Casts: casts}
			bestScore, tie = score, false
		case score == bestScore:
			tie = true
		}
	}
	if best == nil {
		return nil, fmt.Errorf("blade: no overload of %s accepts %s", name, typeList(args))
	}
	if tie {
		return nil, fmt.Errorf("blade: ambiguous call %s%s; add an explicit cast", name, typeList(args))
	}
	return best, nil
}

// Invoke resolves and evaluates a routine call in one step: implicit casts
// are applied, strict routines short-circuit NULL inputs.
func (r *Registry) Invoke(ctx *Ctx, name string, args []types.Value) (types.Value, error) {
	argTypes := make([]*types.Type, len(args))
	for i, a := range args {
		if a.Null && a.T == nil {
			argTypes[i] = types.TNull
		} else {
			argTypes[i] = a.T
		}
	}
	res, err := r.Resolve(name, argTypes)
	if err != nil {
		return types.Value{}, err
	}
	return r.Call(ctx, res, args)
}

// Call evaluates a previously resolved routine against concrete arguments.
func (r *Registry) Call(ctx *Ctx, res *Resolution, args []types.Value) (types.Value, error) {
	rt := res.Routine
	// Strict-NULL and cast screening first: when no implicit cast fires
	// the argument slice passes through unchanged (routines never retain
	// it), keeping the per-call hot path allocation-free.
	needCast := false
	for i, a := range args {
		if a.Null {
			if rt.Strict {
				result := rt.Result
				if result == nil {
					result = types.TNull
				}
				return types.NewNull(result), nil
			}
			continue
		}
		if res.Casts[i] != nil {
			needCast = true
		}
	}
	callArgs := args
	if needCast {
		callArgs = make([]types.Value, len(args))
		for i, a := range args {
			c := res.Casts[i]
			if a.Null || c == nil {
				callArgs[i] = a
				continue
			}
			cv, err := c.Fn(ctx, a)
			if err != nil {
				return types.Value{}, fmt.Errorf("implicit cast %s→%s: %w", c.From, c.To, err)
			}
			callArgs[i] = cv
		}
	}
	out, err := rt.Fn(ctx, callArgs)
	if err != nil {
		return types.Value{}, fmt.Errorf("%s: %w", rt.Name, err)
	}
	return out, nil
}

// Convert applies a cast (explicit or implicit) from v's type to the
// target type, for ::T, CAST(... AS T) and assignment coercion. Same-type
// conversion is the identity; NULL converts to a typed NULL.
func (r *Registry) Convert(ctx *Ctx, v types.Value, to *types.Type) (types.Value, error) {
	if v.T == to {
		return v, nil
	}
	if v.Null {
		return types.NewNull(to), nil
	}
	c, ok := r.LookupCast(v.T, to)
	if !ok {
		return types.Value{}, fmt.Errorf("blade: no cast from %s to %s", v.T, to)
	}
	out, err := c.Fn(ctx, v)
	if err != nil {
		return types.Value{}, fmt.Errorf("cast %s→%s: %w", c.From, c.To, err)
	}
	return out, nil
}

// ImplicitConvert is Convert restricted to implicit edges, used for
// assignment coercion on INSERT and UPDATE.
func (r *Registry) ImplicitConvert(ctx *Ctx, v types.Value, to *types.Type) (types.Value, error) {
	if v.T == to || v.Null {
		return r.Convert(ctx, v, to)
	}
	c, ok := r.LookupCast(v.T, to)
	if !ok || !c.Implicit {
		return types.Value{}, fmt.Errorf("blade: no implicit conversion from %s to %s", v.T, to)
	}
	return r.Convert(ctx, v, to)
}

func sameParams(a, b []*types.Type) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func typeList(ts []*types.Type) string {
	var b strings.Builder
	b.WriteByte('(')
	for i, t := range ts {
		if i > 0 {
			b.WriteString(", ")
		}
		if t == nil {
			b.WriteString("?")
		} else {
			b.WriteString(t.Name)
		}
	}
	b.WriteByte(')')
	return b.String()
}
