package blade

import (
	"fmt"
	"strings"
	"testing"

	"tip/internal/types"
)

func ctx() *Ctx { return &Ctx{} }

func TestBuiltinRoutines(t *testing.T) {
	r := NewRegistry()
	tests := []struct {
		name string
		args []types.Value
		want string
	}{
		{"+", []types.Value{types.NewInt(2), types.NewInt(3)}, "5"},
		{"-", []types.Value{types.NewInt(2), types.NewInt(3)}, "-1"},
		{"*", []types.Value{types.NewInt(2), types.NewInt(3)}, "6"},
		{"/", []types.Value{types.NewInt(7), types.NewInt(2)}, "3"},
		{"%", []types.Value{types.NewInt(7), types.NewInt(2)}, "1"},
		{"+", []types.Value{types.NewFloat(1.5), types.NewFloat(1)}, "2.5"},
		{"+", []types.Value{types.NewInt(1), types.NewFloat(1.5)}, "2.5"}, // implicit INT→FLOAT
		{"||", []types.Value{types.NewString("a"), types.NewString("b")}, "ab"},
		{"upper", []types.Value{types.NewString("ab")}, "AB"},
		{"lower", []types.Value{types.NewString("AB")}, "ab"},
		{"trim", []types.Value{types.NewString("  x ")}, "x"},
		{"char_length", []types.Value{types.NewString("abc")}, "3"},
		{"abs", []types.Value{types.NewInt(-4)}, "4"},
		{"abs", []types.Value{types.NewFloat(-4.5)}, "4.5"},
		{"greatest", []types.Value{types.NewInt(2), types.NewInt(9)}, "9"},
		{"least", []types.Value{types.NewInt(2), types.NewInt(9)}, "2"},
	}
	for _, tt := range tests {
		got, err := r.Invoke(ctx(), tt.name, tt.args)
		if err != nil {
			t.Errorf("%s: %v", tt.name, err)
			continue
		}
		if got.Format() != tt.want {
			t.Errorf("%s = %s, want %s", tt.name, got.Format(), tt.want)
		}
	}
}

func TestDivisionByZero(t *testing.T) {
	r := NewRegistry()
	for _, args := range [][]types.Value{
		{types.NewInt(1), types.NewInt(0)},
		{types.NewFloat(1), types.NewFloat(0)},
		{types.NewInt(1), types.NewInt(0)},
	} {
		if _, err := r.Invoke(ctx(), "/", args); err == nil {
			t.Error("division by zero should fail")
		}
	}
	if _, err := r.Invoke(ctx(), "%", []types.Value{types.NewInt(1), types.NewInt(0)}); err == nil {
		t.Error("modulo by zero should fail")
	}
}

func TestResolutionPrefersExact(t *testing.T) {
	r := NewRegistry()
	// (INT, INT) must pick the INT overload even though both args cast
	// to FLOAT.
	res, err := r.Resolve("+", []*types.Type{types.TInt, types.TInt})
	if err != nil {
		t.Fatal(err)
	}
	if res.Routine.Result != types.TInt {
		t.Errorf("resolved to %s", res.Routine.Result)
	}
	// Mixed resolves to FLOAT with one cast.
	res, err = r.Resolve("+", []*types.Type{types.TInt, types.TFloat})
	if err != nil {
		t.Fatal(err)
	}
	if res.Routine.Result != types.TFloat || res.Casts[0] == nil || res.Casts[1] != nil {
		t.Errorf("mixed resolution = %+v", res)
	}
}

func TestResolutionErrors(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Resolve("nosuch", []*types.Type{types.TInt}); err == nil {
		t.Error("unknown routine should fail")
	}
	if _, err := r.Resolve("+", []*types.Type{types.TString, types.TInt}); err == nil {
		t.Error("unsatisfiable args should fail")
	}
	if _, err := r.Resolve("+", []*types.Type{types.TInt}); err == nil {
		t.Error("wrong arity should fail")
	}
}

func TestAmbiguityDetected(t *testing.T) {
	r := NewRegistry()
	a := &types.Type{Name: "A", Kind: types.KindUDT, UDT: &types.UDT{Name: "A"}}
	bT := &types.Type{Name: "B", Kind: types.KindUDT, UDT: &types.UDT{Name: "B"}}
	cT := &types.Type{Name: "C", Kind: types.KindUDT, UDT: &types.UDT{Name: "C"}}
	id := func(_ *Ctx, v types.Value) (types.Value, error) { return v, nil }
	r.MustRegisterCast(&Cast{From: cT, To: a, Implicit: true, Fn: id})
	r.MustRegisterCast(&Cast{From: cT, To: bT, Implicit: true, Fn: id})
	fn := func(_ *Ctx, args []types.Value) (types.Value, error) { return args[0], nil }
	r.MustRegisterRoutine(&Routine{Name: "f", Params: []*types.Type{a}, Fn: fn})
	r.MustRegisterRoutine(&Routine{Name: "f", Params: []*types.Type{bT}, Fn: fn})
	_, err := r.Resolve("f", []*types.Type{cT})
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguity error = %v", err)
	}
}

func TestStrictNullHandling(t *testing.T) {
	r := NewRegistry()
	got, err := r.Invoke(ctx(), "upper", []types.Value{types.NewNull(types.TString)})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Null || got.T != types.TString {
		t.Errorf("strict NULL = %+v", got)
	}
}

func TestRegisterTypeInstallsStringCasts(t *testing.T) {
	r := NewRegistry()
	typ := r.MustRegisterType(&types.UDT{
		Name:   "Pair",
		Parse:  func(s string) (any, error) { return s + s, nil },
		Format: func(v any) string { return v.(string) },
	})
	// Implicit VARCHAR → Pair.
	v, err := r.ImplicitConvert(ctx(), types.NewString("ab"), typ)
	if err != nil {
		t.Fatal(err)
	}
	if v.Obj().(string) != "abab" {
		t.Errorf("parse cast = %v", v.Obj())
	}
	// Explicit Pair → VARCHAR.
	back, err := r.Convert(ctx(), v, types.TString)
	if err != nil {
		t.Fatal(err)
	}
	if back.Str() != "abab" {
		t.Errorf("format cast = %v", back.Str())
	}
	// But not implicit.
	if _, err := r.ImplicitConvert(ctx(), v, types.TString); err == nil {
		t.Error("UDT→VARCHAR should not be implicit")
	}
	// Duplicate registration fails.
	if _, err := r.RegisterType(&types.UDT{Name: "pair"}); err == nil {
		t.Error("case-insensitive duplicate type should fail")
	}
}

func TestConvertSemantics(t *testing.T) {
	r := NewRegistry()
	// Identity.
	v, err := r.Convert(ctx(), types.NewInt(1), types.TInt)
	if err != nil || v.Int() != 1 {
		t.Errorf("identity convert = %v, %v", v, err)
	}
	// NULL converts to a typed NULL.
	v, err = r.Convert(ctx(), types.NewNull(types.TNull), types.TFloat)
	if err != nil || !v.Null || v.T != types.TFloat {
		t.Errorf("NULL convert = %+v, %v", v, err)
	}
	// Missing edge.
	if _, err := r.Convert(ctx(), types.NewBool(true), types.TFloat); err == nil {
		t.Error("BOOL→FLOAT should fail")
	}
	// Explicit narrowing.
	v, err = r.Convert(ctx(), types.NewFloat(2.9), types.TInt)
	if err != nil || v.Int() != 2 {
		t.Errorf("FLOAT→INT = %v, %v", v, err)
	}
	// String parses.
	v, err = r.Convert(ctx(), types.NewString(" 42 "), types.TInt)
	if err != nil || v.Int() != 42 {
		t.Errorf("VARCHAR→INT = %v, %v", v, err)
	}
	if _, err := r.Convert(ctx(), types.NewString("nope"), types.TInt); err == nil {
		t.Error("bad numeric literal should fail")
	}
}

func TestAggregateRegistry(t *testing.T) {
	r := NewRegistry()
	agg := &Aggregate{
		Name: "concat_all", Param: types.TString, Result: types.TString,
		New: func() AggState { return &concatState{} },
	}
	r.MustRegisterAggregate(agg)
	if !r.HasAggregate("CONCAT_ALL") {
		t.Error("case-insensitive aggregate lookup failed")
	}
	got, _, err := r.ResolveAggregate("concat_all", types.TString)
	if err != nil || got != agg {
		t.Errorf("resolve = %v, %v", got, err)
	}
	// Unknown and mismatched.
	if _, _, err := r.ResolveAggregate("nosuch", types.TString); err == nil {
		t.Error("unknown aggregate should fail")
	}
	if _, _, err := r.ResolveAggregate("concat_all", types.TBool); err == nil {
		t.Error("unsatisfiable aggregate input should fail")
	}
	// Duplicate registration fails.
	if err := r.RegisterAggregate(agg); err == nil {
		t.Error("duplicate aggregate should fail")
	}
}

type concatState struct{ s string }

func (c *concatState) Step(_ *Ctx, v types.Value) error {
	c.s += v.Str()
	return nil
}
func (c *concatState) Final(*Ctx) (types.Value, error) { return types.NewString(c.s), nil }

func TestRoutineErrorsAreWrapped(t *testing.T) {
	r := NewRegistry()
	r.MustRegisterRoutine(&Routine{
		Name: "boom", Params: []*types.Type{types.TInt}, Result: types.TInt, Strict: true,
		Fn: func(*Ctx, []types.Value) (types.Value, error) {
			return types.Value{}, fmt.Errorf("kaboom")
		}})
	_, err := r.Invoke(ctx(), "boom", []types.Value{types.NewInt(1)})
	if err == nil || !strings.Contains(err.Error(), "boom: kaboom") {
		t.Errorf("wrapped error = %v", err)
	}
}

func TestTypeNamesAndLookup(t *testing.T) {
	r := NewRegistry()
	if _, ok := r.LookupType("integer"); !ok {
		t.Error("alias lookup failed")
	}
	if _, ok := r.LookupType("char"); !ok {
		t.Error("CHAR alias failed")
	}
	if _, ok := r.LookupType("nosuch"); ok {
		t.Error("unknown type should not resolve")
	}
	names := r.TypeNames()
	if len(names) == 0 {
		t.Error("no type names")
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Error("names not sorted")
		}
	}
}

func TestResolveExact(t *testing.T) {
	r := NewRegistry()
	if _, ok := r.ResolveExact("+", []*types.Type{types.TInt, types.TInt}); !ok {
		t.Error("exact INT+INT should resolve")
	}
	if _, ok := r.ResolveExact("+", []*types.Type{types.TInt, types.TFloat}); ok {
		t.Error("mixed args are not an exact match")
	}
	if _, ok := r.ResolveExact("nosuch", nil); ok {
		t.Error("unknown routine is not exact")
	}
}

func TestDuplicateOverloadRejected(t *testing.T) {
	r := NewRegistry()
	err := r.RegisterRoutine(&Routine{
		Name: "+", Params: []*types.Type{types.TInt, types.TInt},
		Fn: func(*Ctx, []types.Value) (types.Value, error) { return types.Value{}, nil },
	})
	if err == nil {
		t.Error("duplicate overload should fail")
	}
}
