package tip_test

// testing.B benchmarks, one family per experiment of DESIGN.md.
// cmd/tipbench prints the same series as formatted tables with
// verification; these expose the raw measurements to `go test -bench`.
//
//	E1  BenchmarkElementUnion / Intersect / Difference / NonCanonicalUnion
//	E2  BenchmarkCoalesceTIP / BenchmarkCoalesceLayered
//	E3  BenchmarkTemporalJoinTIP / BenchmarkTemporalJoinLayered
//	E4  BenchmarkNowBinding
//	E6  BenchmarkOverlapsScan / BenchmarkOverlapsIndex
//	E8  BenchmarkOverlapJoinNested / BenchmarkOverlapJoinIndexed
//	E9  BenchmarkDisjointWritersCoarse / BenchmarkDisjointWritersPerTable
//	—   micro-benchmarks of the kernel (parse, format, codec, group_union)

import (
	"fmt"
	"math/rand"
	"testing"

	"tip/internal/bench"
	"tip/internal/engine"
	"tip/internal/layered"
	"tip/internal/temporal"
	"tip/internal/workload"
)

var benchNow = bench.PinnedNow

// --- E1: element algebra scaling -----------------------------------------

func elementPair(n int) (temporal.Element, temporal.Element) {
	r := rand.New(rand.NewSource(11))
	horizon := int64(n) * 40
	return workload.RandomElement(r, n, horizon), workload.RandomElement(r, n, horizon)
}

func benchElementOp(b *testing.B, op func(a, c temporal.Element)) {
	for _, n := range []int{16, 256, 4096, 65536} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			x, y := elementPair(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op(x, y)
			}
		})
	}
}

func BenchmarkElementUnion(b *testing.B) {
	benchElementOp(b, func(x, y temporal.Element) { x.Union(y, benchNow) })
}

func BenchmarkElementIntersect(b *testing.B) {
	benchElementOp(b, func(x, y temporal.Element) { x.Intersect(y, benchNow) })
}

func BenchmarkElementDifference(b *testing.B) {
	benchElementOp(b, func(x, y temporal.Element) { x.Difference(y, benchNow) })
}

// BenchmarkElementNonCanonicalUnion is the E1 ablation: the input must
// be normalised (sort + merge) before every union.
func BenchmarkElementNonCanonicalUnion(b *testing.B) {
	for _, n := range []int{16, 256, 4096, 65536} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			x, y := elementPair(n)
			ps := x.Periods()
			r := rand.New(rand.NewSource(3))
			r.Shuffle(len(ps), func(i, j int) { ps[i], ps[j] = ps[j], ps[i] })
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				shuffled := make([]temporal.Period, len(ps))
				copy(shuffled, ps)
				e, err := temporal.MakeElement(shuffled...)
				if err != nil {
					b.Fatal(err)
				}
				e.Union(y, benchNow)
			}
		})
	}
}

// --- E2: coalescing, blade vs stratum --------------------------------------

func tipWithData(b *testing.B, n int) *engine.Session {
	b.Helper()
	cfg := workload.DefaultConfig(n)
	cfg.OpenFraction = 0
	sess, blade := bench.NewTIPDB()
	if err := workload.LoadTIP(sess, blade, workload.Generate(cfg)); err != nil {
		b.Fatal(err)
	}
	return sess
}

func layeredWithData(b *testing.B, n int) *layered.Stratum {
	b.Helper()
	cfg := workload.DefaultConfig(n)
	cfg.OpenFraction = 0
	st := bench.NewFlatDB()
	if err := workload.LoadLayered(st, workload.Generate(cfg)); err != nil {
		b.Fatal(err)
	}
	return st
}

func BenchmarkCoalesceTIP(b *testing.B) {
	for _, n := range []int{100, 400, 1600} {
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			sess := tipWithData(b, n)
			q := `SELECT patient, length(group_union(valid)) FROM Prescription GROUP BY patient`
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Exec(q, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCoalesceLayered(b *testing.B) {
	for _, n := range []int{100, 200, 400} { // superlinear: kept small
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			st := layeredWithData(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := st.TotalDuration("Prescription", "patient"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E3: temporal self-join -------------------------------------------------

const tipJoinQ = `
	SELECT p1.patient, intersect(p1.valid, p2.valid)
	FROM Prescription p1, Prescription p2
	WHERE p1.drug = 'Diabeta' AND p2.drug = 'Aspirin'
	AND p1.patient = p2.patient AND overlaps(p1.valid, p2.valid)`

func BenchmarkTemporalJoinTIP(b *testing.B) {
	for _, n := range []int{100, 400, 1600} {
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			sess := tipWithData(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Exec(tipJoinQ, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTemporalJoinLayered(b *testing.B) {
	for _, n := range []int{100, 400, 1600} {
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			st := layeredWithData(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := st.OverlapJoin("Prescription", "patient",
					"p1.drug = 'Diabeta'", "p2.drug = 'Aspirin'"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E4: NOW binding ---------------------------------------------------------

// BenchmarkNowBinding measures the evaluation-time cost of substituting
// the transaction time into NOW-relative elements.
func BenchmarkNowBinding(b *testing.B) {
	sess, blade := bench.NewTIPDB()
	cfg := workload.DefaultConfig(1000)
	cfg.OpenFraction = 1 // every element NOW-relative
	if err := workload.LoadTIP(sess, blade, workload.Generate(cfg)); err != nil {
		b.Fatal(err)
	}
	q := `SELECT COUNT(*) FROM Prescription WHERE contains(valid, now())`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Exec(q, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E6: period index vs scan ---------------------------------------------

func overlapsBench(b *testing.B, indexed bool, windowDays int) {
	sess, blade := bench.NewTIPDB()
	if err := workload.LoadTIP(sess, blade, workload.Generate(workload.DefaultConfig(5000))); err != nil {
		b.Fatal(err)
	}
	if indexed {
		if _, err := sess.Exec(`CREATE INDEX rx_valid ON Prescription (valid) USING PERIOD`, nil); err != nil {
			b.Fatal(err)
		}
	}
	lo := temporal.MustDate(1998, 3, 1)
	hi := lo + temporal.Chronon(int64(windowDays)*86400)
	q := fmt.Sprintf(`SELECT COUNT(*) FROM Prescription WHERE overlaps(valid, '[%s, %s]')`, lo, hi)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Exec(q, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOverlapsScan(b *testing.B) {
	for _, w := range []int{1, 30, 720} {
		b.Run(fmt.Sprintf("window=%dd", w), func(b *testing.B) { overlapsBench(b, false, w) })
	}
}

func BenchmarkOverlapsIndex(b *testing.B) {
	for _, w := range []int{1, 30, 720} {
		b.Run(fmt.Sprintf("window=%dd", w), func(b *testing.B) { overlapsBench(b, true, w) })
	}
}

// --- E8: temporal join algorithms ---------------------------------------

func overlapJoinBench(b *testing.B, indexed bool, n int) {
	sess, _ := bench.NewTIPDB()
	mustB := func(q string) {
		b.Helper()
		if _, err := sess.Exec(q, nil); err != nil {
			b.Fatal(err)
		}
	}
	mustB(`CREATE TABLE rx (id INT, valid Element)`)
	mustB(`CREATE TABLE visit (id INT, during Period)`)
	if indexed {
		mustB(`CREATE INDEX vix ON visit (during) USING PERIOD`)
	}
	r := rand.New(rand.NewSource(31))
	base := temporal.MustDate(1998, 1, 1)
	horizon := int64(n) * 20 * 86400
	for i := 0; i < n; i++ {
		lo := base + temporal.Chronon(r.Int63n(horizon))
		mustB(fmt.Sprintf(`INSERT INTO rx VALUES (%d, '%s')`,
			i, temporal.MustPeriod(lo, lo+temporal.Chronon(r.Int63n(30*86400))).Element()))
		vlo := base + temporal.Chronon(r.Int63n(horizon))
		mustB(fmt.Sprintf(`INSERT INTO visit VALUES (%d, '%s')`,
			i, temporal.MustPeriod(vlo, vlo+temporal.Chronon(r.Int63n(5*86400)))))
	}
	q := `SELECT COUNT(*) FROM rx r, visit v WHERE overlaps(v.during, r.valid)`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Exec(q, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOverlapJoinNested(b *testing.B) {
	for _, n := range []int{100, 400} {
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) { overlapJoinBench(b, false, n) })
	}
}

func BenchmarkOverlapJoinIndexed(b *testing.B) {
	for _, n := range []int{100, 400, 1600} {
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) { overlapJoinBench(b, true, n) })
	}
}

// --- E9: per-table locking vs the single-lock ablation -----------------------

// disjointWritersBench measures insert throughput into a writer-private
// table while an analyst session loops full temporal scans over another
// table. Coarse mode reproduces the seed's one-lock engine, where every
// insert queues behind the scan in flight.
func disjointWritersBench(b *testing.B, coarse, obsOn bool) {
	disjointWritersBenchAnalyst(b, coarse, obsOn, true)
}

func disjointWritersBenchAnalyst(b *testing.B, coarse, obsOn, analyst bool) {
	sess, blade := bench.NewTIPDB()
	if err := workload.LoadTIP(sess, blade, workload.Generate(workload.DefaultConfig(2000))); err != nil {
		b.Fatal(err)
	}
	if _, err := sess.Exec(`CREATE TABLE w (a INT)`, nil); err != nil {
		b.Fatal(err)
	}
	db := sess.Database()
	db.SetCoarseLocking(coarse)
	db.SetObservability(obsOn)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		if !analyst {
			return
		}
		a := db.NewSession()
		q := `SELECT COUNT(*) FROM Prescription WHERE overlaps(valid, '[1998-03-01, 1998-03-10]')`
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := a.Exec(q, nil); err != nil {
					panic(err)
				}
			}
		}
	}()
	writer := db.NewSession()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := writer.Exec(`INSERT INTO w VALUES (1)`, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	<-done
}

func BenchmarkDisjointWritersCoarse(b *testing.B)   { disjointWritersBench(b, true, true) }
func BenchmarkDisjointWritersPerTable(b *testing.B) { disjointWritersBench(b, false, true) }

// BenchmarkDisjointWritersPerTableNoObs is the observability-overhead
// ablation: identical to PerTable with the metrics subsystem switched
// off. `make obs-smoke` compares the two; DESIGN.md records the gap.
func BenchmarkDisjointWritersPerTableNoObs(b *testing.B) { disjointWritersBench(b, false, false) }

// BenchmarkDisjointWritersNoAnalyst is the MVCC ablation baseline:
// identical to PerTable without the scanning analyst. Since reads are
// snapshot-pinned and lock-free, the analyst costs the writer only the
// CPU the scans themselves burn — on a multi-core box PerTable should
// land within ~10% of this baseline (`make mvcc-smoke` runs both; the
// gap is CPU competition, not lock waits, so it widens on one core).
func BenchmarkDisjointWritersNoAnalyst(b *testing.B) {
	disjointWritersBenchAnalyst(b, false, true, false)
}

// --- kernel micro-benchmarks -------------------------------------------------

func BenchmarkParseElement(b *testing.B) {
	s := "{[1999-01-01, 1999-04-30], [1999-07-01, 1999-10-31], [1999-11-01, NOW]}"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := temporal.ParseElement(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFormatElement(b *testing.B) {
	e, err := temporal.ParseElement("{[1999-01-01, 1999-04-30], [1999-07-01, 1999-10-31]}")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.String()
	}
}

func BenchmarkElementCodec(b *testing.B) {
	e, _ := elementPair(64)
	buf := e.AppendBinary(nil)
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e.AppendBinary(nil)
		}
	})
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := temporal.DecodeElement(buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGroupUnionAggregate isolates the aggregate itself: one group
// of n single-period elements coalesced by group_union.
func BenchmarkGroupUnionAggregate(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			sess, blade := bench.NewTIPDB()
			cfg := workload.DefaultConfig(n)
			cfg.OpenFraction = 0
			cfg.Patients = 1 // a single group: pure aggregate cost
			if err := workload.LoadTIP(sess, blade, workload.Generate(cfg)); err != nil {
				b.Fatal(err)
			}
			q := `SELECT patient, length(group_union(valid)) FROM Prescription GROUP BY patient`
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Exec(q, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
