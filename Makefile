GO ?= go

.PHONY: check vet build test race bench obs-smoke

# check is what CI runs: static checks, a full build, the test suite
# under the race detector (the engine promises parallel execution across
# disjoint tables, so plain `go test` is not enough), and the
# metrics-overhead smoke.
check: vet build race obs-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench regenerates the experiment tables (quick sizes).
bench:
	$(GO) run ./cmd/tipbench

# obs-smoke compares writer throughput with the metrics subsystem on
# (BenchmarkDisjointWritersPerTable) and off (...PerTableNoObs). The
# observability overhead budget is <=5%; DESIGN.md ("Observability")
# records the measured numbers.
obs-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkDisjointWritersPerTable' -benchtime 300ms .
