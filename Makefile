GO ?= go

.PHONY: check vet build test race bench obs-smoke crash-smoke fuzz-smoke netfault-smoke mvcc-smoke plan-smoke repl-smoke parse-smoke mem-smoke

# check is what CI runs: static checks, a full build, the test suite
# under the race detector (the engine promises parallel execution across
# disjoint tables, so plain `go test` is not enough), the crash-recovery
# torture subset, the wire-fault torture subset, the MVCC snapshot
# smoke, the planner smoke, the replication smoke, the resource-
# governance smoke, and the metrics-overhead smoke.
check: vet build race parse-smoke crash-smoke netfault-smoke mvcc-smoke plan-smoke repl-smoke mem-smoke obs-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench regenerates the experiment tables (quick sizes).
bench:
	$(GO) run ./cmd/tipbench

# parse-smoke guards the SQL front end: the differential parity corpus
# (every statement in the test suites, examples and the workload
# generator must produce the same AST as the frozen pre-rewrite
# grammar), the committed FuzzParseParity/FuzzLexer seed corpora, the
# lexer/parser bug-sweep regressions (error line:column, malformed
# exponents), and the allocs-per-parse regression bound
# (testing.AllocsPerRun, so it runs without the race detector's
# allocation inflation).
parse-smoke:
	$(GO) test -run 'TestParseParity|TestParseScriptParity|TestParseError|TestParseMalformedExponents|TestParseAllocs|TestParseAcceptSweep|FuzzParseParity' -count=1 ./internal/sql/parse
	$(GO) test -run 'TestLexer|FuzzLexer' -count=1 ./internal/sql/scan

# crash-smoke replays the crash-torture battery (-short trims the
# random intra-frame cuts; every frame-boundary cut still runs): the WAL
# is cut at every byte offset that a real crash could leave behind and
# recovery must restore an exact statement prefix with no double-applies.
crash-smoke:
	$(GO) test -short -run 'TestCrashTorture|TestCheckpointCrashWindow|TestWALCorrupt|TestWALSeqGap|TestWALShortWrite|TestWALCrashSink' ./internal/engine

# netfault-smoke replays the wire-fault torture battery under the race
# detector: 1000 hostile connections (slowloris trickles, mid-frame
# severs, silent truncations, stalls) must leak no goroutines and keep
# memory bounded, cancellation racing writes must never half-apply a
# statement, and the lifecycle acceptance tests (MsgCancel and statement
# timeout under 100ms, shedding, graceful drain) must hold.
netfault-smoke:
	$(GO) test -race -run 'TestNetFault|TestLifecycle' ./internal/server

# fuzz-smoke gives each fuzz target (SQL surface and WAL frame decoder)
# a short randomized burst beyond the checked-in corpus.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzWALFrame -fuzztime 10s ./internal/engine

# mvcc-smoke exercises the MVCC snapshot layer under the race detector:
# snapshot atomicity beside concurrent writers (plain, hash-index and
# period-index scans), rollback targeting, horizon-gated slot reuse,
# zero goroutine leaks and GC of superseded versions — then runs the
# disjoint-writer benchmark with and without the scanning analyst so the
# analyst's cost to writers stays visible (scans never take locks, so
# any gap is pure CPU competition).
mvcc-smoke:
	$(GO) test -race -run 'TestMVCC' -count=1 ./internal/engine
	$(GO) test -race -run '^$$' -bench 'BenchmarkDisjointWriters(PerTable|NoAnalyst)$$' -benchtime 200ms .

# plan-smoke exercises the cost-based planner and the batched executor
# under the race detector: the EXPLAIN/EXPLAIN ANALYZE planner-choice
# goldens (period-index probe kept and rejected by cost, sort-merge and
# hash coalesce, statistics flipping both decisions), the batched-vs-
# scalar parity property battery (GROUP BY/group_union/DISTINCT/ORDER
# BY/set ops over NULLs and period boundaries), and the layered-stratum
# agreement across every TIP coalesce plan variant (E2).
plan-smoke:
	$(GO) test -race -run 'TestPlanner|TestExplain|TestBatchedScalarParity' -count=1 ./internal/exec
	$(GO) test -race -run 'TestE2AgreesAndRuns|TestCoalescePlanVariants' -count=1 ./internal/bench ./internal/layered

# repl-smoke runs the replication torture battery under the race
# detector: a 3-node in-process cluster (durable primary + 2 snapshot-
# bootstrapped read replicas over real TCP) converging under load,
# killed replicas rejoining via snapshot + WAL catch-up, severed and
# stalled links resubscribing with exact-count (no-gap, no-double-apply)
# convergence, checkpoint truncation forcing snapshot re-bootstrap, and
# the staleness-bounded read router failing over around dead and lagging
# replicas.
repl-smoke:
	$(GO) test -race -count=1 ./internal/repl

# mem-smoke runs the resource-governance battery under the race
# detector: SET STATEMENT_MEMORY surface and budget aborts (typed
# error, all-or-nothing writes, reusable session, bounded overshoot),
# the accounting-leak invariant across the operator matrix under every
# ending (success, memory abort, timeout, interrupt, rollback), the
# >=90% accounting-coverage floor, bounded top-K parity and engagement,
# the memory-hog workload mix with and without a budget, and the wire
# layer: budget aborts as client.ErrResource on a connection that stays
# usable, memory-pressure shedding ridden out by the retry policy, the
# response frame cap, and an OOM storm with bounded heap and zero
# goroutine leaks.
mem-smoke:
	$(GO) test -race -run 'TestSetStatementMemory|TestBudgetAbort|TestMemAccountingLeakInvariant|TestAccountingCoverage' -count=1 ./internal/engine
	$(GO) test -race -run 'TestTopK' -count=1 ./internal/exec
	$(GO) test -race -run 'TestMemHog' -count=1 ./internal/workload
	$(GO) test -race -run 'TestBudgetAbortOverWire|TestMemShedThenRetry|TestResultFrameCapOverWire|TestOOMStorm' -count=1 ./internal/server

# obs-smoke compares writer throughput with the metrics subsystem on
# (BenchmarkDisjointWritersPerTable) and off (...PerTableNoObs). The
# observability overhead budget is <=5%; DESIGN.md ("Observability")
# records the measured numbers.
obs-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkDisjointWritersPerTable' -benchtime 300ms .
