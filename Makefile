GO ?= go

.PHONY: check vet build test race bench

# check is what CI runs: static checks, a full build, and the test suite
# under the race detector (the engine promises parallel execution across
# disjoint tables, so plain `go test` is not enough).
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench regenerates the experiment tables (quick sizes).
bench:
	$(GO) run ./cmd/tipbench
