package tip_test

import (
	"os/exec"
	"strings"
	"testing"
)

// Smoke tests for the command-line tools, run end to end. Skipped under
// -short (each invocation compiles a main package).

func TestTipbenchTool(t *testing.T) {
	if testing.Short() {
		t.Skip("tools skipped in -short mode")
	}
	out, err := exec.Command("go", "run", "./cmd/tipbench", "-exp", "E5").CombinedOutput()
	if err != nil {
		t.Fatalf("tipbench: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "Query complexity") {
		t.Errorf("tipbench output missing table:\n%s", out)
	}
	if out, err := exec.Command("go", "run", "./cmd/tipbench", "-exp", "E99").CombinedOutput(); err == nil {
		t.Errorf("unknown experiment should fail:\n%s", out)
	}
}

func TestTipbrowseDemo(t *testing.T) {
	if testing.Short() {
		t.Skip("tools skipped in -short mode")
	}
	out, err := exec.Command("go", "run", "./cmd/tipbrowse", "-demo", "-rows", "6").CombinedOutput()
	if err != nil {
		t.Fatalf("tipbrowse: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{"slider sweep", "what-if", "timeline", "NOW ="} {
		if !strings.Contains(s, want) {
			t.Errorf("tipbrowse demo missing %q", want)
		}
	}
}

func TestTipsqlPipedSession(t *testing.T) {
	if testing.Short() {
		t.Skip("tools skipped in -short mode")
	}
	cmd := exec.Command("go", "run", "./cmd/tipsql")
	cmd.Stdin = strings.NewReader(`CREATE TABLE t (a INT, valid Element);
INSERT INTO t VALUES (1, '{[1999-01-01, NOW]}');
SELECT a, length(valid) FROM t;
EXPLAIN SELECT a FROM t WHERE a = 1;
\t
\d t
\q
`)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("tipsql: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{"(1 rows affected)", "a | length", "full scan", "column"} {
		if !strings.Contains(s, want) {
			t.Errorf("tipsql session missing %q in:\n%s", want, s)
		}
	}
	// SQL errors are reported, not fatal.
	cmd = exec.Command("go", "run", "./cmd/tipsql")
	cmd.Stdin = strings.NewReader("SELECT nope FROM nowhere;\nSELECT 1;\n\\q\n")
	out, err = cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("tipsql error handling: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "error:") {
		t.Errorf("tipsql should report SQL errors:\n%s", out)
	}
}
