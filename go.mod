module tip

go 1.22
