package tip

import (
	"path/filepath"
	"testing"
	"time"

	"tip/internal/temporal"
)

func openPinned() (*DB, *Session) {
	db := Open()
	db.SetClock(temporal.MustDate(1999, 11, 12))
	return db, db.Session()
}

func TestPublicAPIQuickstart(t *testing.T) {
	_, s := openPinned()
	s.MustExec(`CREATE TABLE Prescription (patient VARCHAR(20), drug VARCHAR(20), valid Element)`, nil)
	s.MustExec(`INSERT INTO Prescription VALUES ('Mr.Showbiz', 'Diabeta', '{[1999-10-01, NOW]}')`, nil)
	res, err := s.Exec(`SELECT patient, length(valid) FROM Prescription WHERE drug = :d`,
		map[string]any{"d": "Diabeta"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	sp, ok := res.Rows[0][1].Obj().(Span)
	if !ok || sp != 42*temporal.Day {
		t.Errorf("length = %v", res.Rows[0][1].Format())
	}
}

func TestParamConversions(t *testing.T) {
	_, s := openPinned()
	s.MustExec(`CREATE TABLE t (a INT, f FLOAT, b BOOLEAN, v VARCHAR(10), c Chronon, sp Span, e Element)`, nil)
	el, _ := ParseElement(`{[1999-01-01, 1999-02-01]}`)
	sp, _ := ParseSpan(`7 12:00:00`)
	c, _ := ParseChronon(`1999-06-01`)
	_, err := s.Exec(`INSERT INTO t VALUES (:a, :f, :b, :v, :c, :sp, :e)`, map[string]any{
		"a": 1, "f": 2.5, "b": true, "v": "x", "c": c, "sp": sp, "e": el,
	})
	if err != nil {
		t.Fatal(err)
	}
	// time.Time converts to a Chronon.
	_, err = s.Exec(`INSERT INTO t (c) VALUES (:t)`, map[string]any{
		"t": time.Date(1999, 7, 1, 0, 0, 0, 0, time.UTC)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Exec(`SELECT COUNT(*) FROM t WHERE c >= :cut`, map[string]any{"cut": c})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 2 {
		t.Errorf("count = %d", res.Rows[0][0].Int())
	}
	// Unsupported type errors cleanly.
	if _, err := s.Exec(`SELECT :x`, map[string]any{"x": struct{}{}}); err == nil {
		t.Error("unsupported parameter type should fail")
	}
}

func TestSaveOpenFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "demo.tipdb")
	db, s := openPinned()
	s.MustExec(`CREATE TABLE t (v Element)`, nil)
	s.MustExec(`INSERT INTO t VALUES ('{[1999-01-01, NOW]}')`, nil)
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	db2.SetClock(temporal.MustDate(1999, 11, 12))
	res, err := db2.Session().Exec(`SELECT v FROM t`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Format() != "{[1999-01-01, NOW]}" {
		t.Errorf("reloaded = %s", res.Rows[0][0].Format())
	}
	if _, err := OpenFile(filepath.Join(dir, "missing")); err == nil {
		t.Error("OpenFile of missing path should fail")
	}
}

func TestOpenDurable(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "dbdir")

	db, err := OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.SetClock(temporal.MustDate(1999, 11, 12))
	s := db.Session()
	s.MustExec(`CREATE TABLE t (a INT, valid Element)`, nil)
	s.MustExec(`INSERT INTO t VALUES (1, '{[1999-01-01, NOW]}')`, nil)
	if err := db.Close(); err != nil { // "crash" without checkpoint
		t.Fatal(err)
	}

	// Reopen: the WAL alone rebuilds the state.
	db2, err := OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	db2.SetClock(temporal.MustDate(1999, 11, 12))
	s2 := db2.Session()
	res, err := s2.Exec(`SELECT a, valid FROM t`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].Format() != "{[1999-01-01, NOW]}" {
		t.Fatalf("recovered = %v", res.Rows)
	}
	// Checkpoint, add more, reopen again: snapshot + fresh log.
	s2.MustExec(`INSERT INTO t VALUES (2, NULL)`, nil)
	if err := db2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s2.MustExec(`INSERT INTO t VALUES (3, NULL)`, nil)
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	db3, err := OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	res, err = db3.Session().Exec(`SELECT COUNT(*) FROM t`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 3 {
		t.Errorf("rows after checkpoint cycle = %d", res.Rows[0][0].Int())
	}
	// Checkpoint on a non-durable database fails.
	if err := Open().Checkpoint(); err == nil {
		t.Error("Checkpoint without OpenDurable should fail")
	}
}

func TestServeRoundTrip(t *testing.T) {
	db, s := openPinned()
	s.MustExec(`CREATE TABLE t (a INT)`, nil)
	s.MustExec(`INSERT INTO t VALUES (7)`, nil)
	srv, err := db.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Addr() == "" {
		t.Error("server address empty")
	}
}

func TestFormatHelper(t *testing.T) {
	_, s := openPinned()
	res := s.MustExec(`SELECT 1 AS one`, nil)
	if Format(res) == "" {
		t.Error("Format produced nothing")
	}
}

func TestSessionNow(t *testing.T) {
	_, s := openPinned()
	if s.Now() != temporal.MustDate(1999, 11, 12) {
		t.Errorf("Now = %s", s.Now())
	}
	s.MustExec(`SET NOW = '2005-01-01'`, nil)
	if s.Now() != temporal.MustDate(2005, 1, 1) {
		t.Errorf("Now after override = %s", s.Now())
	}
}
