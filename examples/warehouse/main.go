// Warehouse: maintaining a temporal view over a non-temporal source —
// the application that motivated TIP (the authors built it for their
// temporal data-warehousing work, refs [9,10] of the paper).
//
// The source is an ordinary, non-temporal assignment table that only
// knows the present: (employee, dept). The tvm maintainer turns its
// change stream into a history view whose `valid` Element records, for
// every (employee, dept) spell, exactly when the source held it — open
// rows end at NOW, so the current assignment's history keeps growing
// without further maintenance.
package main

import (
	"fmt"
	"log"

	"tip"
	"tip/internal/exec"
	"tip/internal/temporal"
	"tip/internal/tvm"
	"tip/internal/types"
)

func main() {
	db := tip.Open()
	db.SetClock(tip.MustChronon(1999, 12, 31, 0, 0, 0))
	s := db.Session()

	m, err := tvm.New(s.Raw(), db.Blade(), "AssignmentHistory",
		[]string{"employee VARCHAR(20)"}, []string{"dept VARCHAR(20)"})
	if err != nil {
		log.Fatal(err)
	}

	// Replay a year of source changes (each is a plain UPDATE in the
	// source system; the maintainer turns them into history).
	day := func(mo, d int) temporal.Chronon { return tip.MustChronon(1999, mo, d, 0, 0, 0) }
	set := func(t temporal.Chronon, emp, dept string) {
		if err := m.Set(t, []types.Value{types.NewString(emp)},
			[]types.Value{types.NewString(dept)}); err != nil {
			log.Fatal(err)
		}
	}
	set(day(1, 1), "ada", "engineering")
	set(day(1, 1), "grace", "engineering")
	set(day(2, 15), "alan", "research")
	set(day(4, 1), "ada", "research")    // ada moves
	set(day(6, 1), "grace", "sales")     // grace moves
	set(day(9, 1), "ada", "engineering") // ada moves back
	set(day(11, 1), "alan", "sales")     // alan moves
	if err := m.Validate(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("-- the maintained temporal view --")
	print(s, `SELECT employee, dept, valid FROM AssignmentHistory ORDER BY employee, start(valid)`)

	fmt.Println("\n-- who was in engineering on 1999-05-01? (AsOf) --")
	res, err := m.AsOf(day(5, 1))
	if err != nil {
		log.Fatal(err)
	}
	show(res)

	fmt.Println("\n-- ada's full history --")
	res, err = m.History([]types.Value{types.NewString("ada")})
	if err != nil {
		log.Fatal(err)
	}
	show(res)

	fmt.Println("\n-- total tenure per employee (coalesced across moves) --")
	print(s, `SELECT employee, length(group_union(valid)) AS tenure
	          FROM AssignmentHistory GROUP BY employee ORDER BY employee`)

	fmt.Println("\n-- when were ada and grace in the same dept at the same time? --")
	print(s, `SELECT a.dept, intersect(a.valid, b.valid) AS together
	          FROM AssignmentHistory a, AssignmentHistory b
	          WHERE a.employee = 'ada' AND b.employee = 'grace'
	          AND a.dept = b.dept AND overlaps(a.valid, b.valid)`)

	fmt.Println("\n-- the open rows keep growing: same view, asked mid-2000 --")
	s.MustExec(`SET NOW = '2000-06-30'`, nil)
	print(s, `SELECT employee, dept, length(valid) AS so_far FROM AssignmentHistory
	          WHERE contains(valid, now()) ORDER BY employee`)
}

func print(s *tip.Session, q string) {
	res, err := s.Exec(q, nil)
	if err != nil {
		log.Fatal(err)
	}
	show(res)
}

func show(res *exec.Result) { fmt.Print(tip.Format(res)) }
