// Whatif: NOW-relative data and what-if analysis. A contracts table
// holds NOW-relative validity ([start, NOW], [NOW-30, NOW] …); the same
// queries are then evaluated under different interpretations of NOW —
// the facility the TIP Browser exposes with its NOW override — and the
// result is rendered on the browser's ASCII time line.
package main

import (
	"fmt"
	"log"

	"tip"
	"tip/internal/browser"
)

func main() {
	db := tip.Open()
	realNow := tip.MustChronon(1999, 11, 12, 0, 0, 0)
	db.SetClock(realNow)
	s := db.Session()

	s.MustExec(`CREATE TABLE Contract (
		vendor VARCHAR(20), kind VARCHAR(20), valid Element)`, nil)
	s.MustExec(`INSERT INTO Contract VALUES
		('acme',    'support',  '{[1998-01-01, NOW]}'),
		('acme',    'license',  '{[1998-01-01, 1998-12-31]}'),
		('globex',  'support',  '{[NOW-90, NOW]}'),
		('globex',  'license',  '{[1999-06-01, 1999-12-31]}'),
		('initech', 'trial',    '{[NOW-30, NOW+30]}')`, nil)

	active := `SELECT vendor, kind FROM Contract WHERE contains(valid, now()) ORDER BY vendor, kind`

	fmt.Println("-- active contracts today (NOW = 1999-11-12) --")
	print(s, active)

	// What if we ask the same question a year from now? No data
	// changes; only the interpretation of NOW does.
	fmt.Println("\n-- what-if: SET NOW = '2000-11-12' --")
	s.MustExec(`SET NOW = '2000-11-12'`, nil)
	print(s, active)

	// NOW-relative comparisons flip over time, the paper's example of a
	// time-dependent comparison.
	fmt.Println("\n-- contracts whose validity ends after 1999 (evaluated under both NOWs) --")
	endsLater := `SELECT vendor, kind, end(valid) AS ends FROM Contract
	              WHERE end(valid) > '1999-12-31'::Chronon ORDER BY vendor, kind`
	print(s, endsLater)
	s.MustExec(`SET NOW = DEFAULT`, nil)
	fmt.Println("(back at 1999-11-12:)")
	print(s, endsLater)

	// Render the what-if visually: same result, two time lines.
	res, err := s.Exec(`SELECT vendor, kind, valid FROM Contract ORDER BY vendor, kind`, nil)
	if err != nil {
		log.Fatal(err)
	}
	b, err := browser.New(res, "valid", realNow, 56)
	if err != nil {
		log.Fatal(err)
	}
	lo := tip.MustChronon(1998, 1, 1, 0, 0, 0)
	hi := tip.MustChronon(2001, 1, 1, 0, 0, 0)
	if err := b.SetWindow(lo, hi); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n-- browser view, NOW = 1999-11-12 --")
	fmt.Print(b.Render())
	b.SetNow(tip.MustChronon(2000, 11, 12, 0, 0, 0))
	fmt.Println("\n-- browser view, what-if NOW = 2000-11-12 (open periods grew) --")
	fmt.Print(b.Render())
}

func print(s *tip.Session, q string) {
	res, err := s.Exec(q, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tip.Format(res))
}
