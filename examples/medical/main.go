// Medical: the paper's §2/§4 demonstration end to end — the Prescription
// schema, inserts with TIP literals, and the four example queries (Q1-Q4)
// exactly as printed in the paper, plus the Allen-operator and aggregate
// routines around them.
package main

import (
	"fmt"
	"log"

	"tip"
)

func must(res *tip.Result, err error) *tip.Result {
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	db := tip.Open()
	db.SetClock(tip.MustChronon(1999, 11, 12, 0, 0, 0)) // the demo ran in late 1999
	s := db.Session()

	fmt.Println("-- Q1: the paper's CREATE TABLE and INSERT --")
	s.MustExec(`CREATE TABLE Prescription (
		doctor CHAR(20), patient CHAR(20), patientdob Chronon,
		drug CHAR(20), dosage INT, frequency Span, valid Element)`, nil)
	s.MustExec(`INSERT INTO Prescription VALUES
		('Dr.Pepper', 'Mr.Showbiz', '1963-08-13', 'Diabeta', 1, '0 08:00:00', '{[1999-10-01, NOW]}')`, nil)

	// Supporting cast for the remaining queries.
	s.MustExec(`INSERT INTO Prescription VALUES
		('Dr.Salt', 'Mr.Showbiz', '1963-08-13', 'Aspirin', 2, '0 12:00:00', '{[1999-09-01, 1999-10-15]}'),
		('Dr.No',   'Baby.Doe',   '1999-01-01', 'Tylenol', 1, '1',          '{[1999-01-10, 1999-01-20]}'),
		('Dr.No',   'Kid.Roe',    '1995-03-01', 'Tylenol', 1, '1',          '{[1999-02-01, 1999-02-10]}'),
		('Dr.Who',  'Mx.Overlap', '1980-01-01', 'DrugA',   1, '1',          '{[1999-01-01, 1999-03-01]}'),
		('Dr.Who',  'Mx.Overlap', '1980-01-01', 'DrugB',   1, '1',          '{[1999-02-01, 1999-04-01]}')`, nil)
	fmt.Print(tip.Format(must(s.Exec(`SELECT patient, drug, valid FROM Prescription ORDER BY patient, drug`, nil))))

	fmt.Println("\n-- Q2: Tylenol patients younger than :w weeks at first prescription --")
	q2 := `SELECT patient FROM Prescription
	       WHERE drug = 'Tylenol' AND start(valid) - patientdob < '7 00:00:00'::Span * :w`
	for _, w := range []int{1, 2, 500} {
		res := must(s.Exec(q2, map[string]any{"w": w}))
		fmt.Printf("w = %d:\n%s", w, tip.Format(res))
	}

	fmt.Println("\n-- Q3: who took Diabeta and Aspirin simultaneously, and exactly when --")
	fmt.Print(tip.Format(must(s.Exec(`
		SELECT p1.patient, intersect(p1.valid, p2.valid) AS together
		FROM Prescription p1, Prescription p2
		WHERE p1.drug = 'Diabeta' AND p2.drug = 'Aspirin'
		AND p1.patient = p2.patient
		AND overlaps(p1.valid, p2.valid)`, nil))))

	fmt.Println("\n-- Q4: total time on medication (note SUM(length) double-counts) --")
	fmt.Print(tip.Format(must(s.Exec(`
		SELECT patient,
		       length(group_union(valid)) AS coalesced,
		       SUM(length(valid)) AS naive_sum
		FROM Prescription GROUP BY patient ORDER BY patient`, nil))))

	fmt.Println("\n-- Allen's operators on prescription periods --")
	fmt.Print(tip.Format(must(s.Exec(`
		SELECT p1.drug, p2.drug,
		       allen(first(p1.valid), first(p2.valid)) AS relation
		FROM Prescription p1, Prescription p2
		WHERE p1.patient = 'Mx.Overlap' AND p2.patient = 'Mx.Overlap'
		AND p1.drug < p2.drug`, nil))))

	fmt.Println("\n-- NOW semantics: the same query at four evaluation times --")
	active := `SELECT patient, drug FROM Prescription WHERE contains(valid, now()) ORDER BY drug`
	for _, when := range []string{"1999-02-15", "1999-09-15", "1999-11-12", "2005-01-01"} {
		s.MustExec(fmt.Sprintf("SET NOW = '%s'", when), nil)
		res := must(s.Exec(active, nil))
		fmt.Printf("NOW = %s:\n%s", when, tip.Format(res))
	}
	s.MustExec(`SET NOW = DEFAULT`, nil)
}
