// Clientserver: the paper's Figure 1 from application code. A TIP
// server is started in-process; two clients connect over TCP — one with
// the native TIP client library (full customised type mapping: Element
// and Span values arrive as Go objects) and one through the standard
// database/sql interface (TIP values map to their literal text).
package main

import (
	"database/sql"
	"fmt"
	"log"

	"tip"
	"tip/internal/blade"
	"tip/internal/client"
	"tip/internal/core"
	"tip/internal/temporal"
	"tip/internal/types"
)

func main() {
	// --- server side: a TIP-enabled database listening on TCP ---------
	db := tip.Open()
	db.SetClock(tip.MustChronon(1999, 11, 12, 0, 0, 0))
	srv, err := db.Serve("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("tipserver listening on %s\n\n", srv.Addr())

	// --- native client: customised type mapping -----------------------
	reg := blade.NewRegistry()
	core.MustRegister(reg) // the client library's type tables
	c, err := client.Connect(srv.Addr(), reg)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	mustExec := func(q string, params map[string]types.Value) {
		if _, err := c.Exec(q, params); err != nil {
			log.Fatal(err)
		}
	}
	mustExec(`CREATE TABLE Prescription (patient VARCHAR(20), drug VARCHAR(20), valid Element)`, nil)
	mustExec(`INSERT INTO Prescription VALUES
		('Mr.Showbiz', 'Diabeta', '{[1999-10-01, NOW]}'),
		('Mr.Showbiz', 'Aspirin', '{[1999-09-01, 1999-10-15]}')`, nil)

	res, err := c.Exec(`SELECT drug, valid, length(valid) FROM Prescription WHERE patient = :p ORDER BY drug`,
		map[string]types.Value{"p": types.NewString("Mr.Showbiz")})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("native client (values arrive as Go temporal objects):")
	for _, row := range res.Rows {
		el := row[1].Obj().(temporal.Element) // a real temporal.Element
		span := row[2].Obj().(temporal.Span)  // a real temporal.Span
		first, _ := el.First()                // use the kernel API directly
		fmt.Printf("  %-8s %-28s first period %v, length %v\n",
			row[0].Str(), el, first, span)
	}

	// --- database/sql client: the standard interface -------------------
	client.RegisterDriver()
	sqlDB, err := sql.Open("tip", srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer sqlDB.Close()

	fmt.Println("\ndatabase/sql client (TIP values map to literal text):")
	rows, err := sqlDB.Query(
		`SELECT drug, valid FROM Prescription WHERE overlaps(valid, :win) ORDER BY drug`,
		sql.Named("win", "[1999-10-05, 1999-10-10]"))
	if err != nil {
		log.Fatal(err)
	}
	defer rows.Close()
	for rows.Next() {
		var drug, valid string
		if err := rows.Scan(&drug, &valid); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s %s\n", drug, valid)
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}

	// Transactions work through both interfaces; sessions are
	// independent, so a rollback here never disturbs the native client.
	tx, err := sqlDB.Begin()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := tx.Exec(`INSERT INTO Prescription VALUES ('Ms.Quiet', 'Tylenol', '{[1999-11-01, NOW]}')`); err != nil {
		log.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		log.Fatal(err)
	}
	var n int
	if err := sqlDB.QueryRow(`SELECT COUNT(*) FROM Prescription`).Scan(&n); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter rollback the table still has %d rows\n", n)
}
