// Quickstart: open an embedded TIP database, store temporal data using
// plain SQL with TIP literals, and ask temporal questions — the
// five-minute tour of the public API.
package main

import (
	"fmt"
	"log"

	"tip"
)

func main() {
	// An in-memory TIP-enabled database. Pinning the clock makes the
	// output reproducible; drop SetClock to use real time.
	db := tip.Open()
	now := tip.MustChronon(1999, 11, 12, 0, 0, 0)
	db.SetClock(now)
	s := db.Session()

	// TIP types appear in DDL like any built-in type.
	s.MustExec(`CREATE TABLE Employment (
		person  VARCHAR(20),
		company VARCHAR(20),
		valid   Element)`, nil)

	// String literals convert to TIP values automatically; NOW makes a
	// period grow with time.
	s.MustExec(`INSERT INTO Employment VALUES
		('ada',   'Initech',  '{[1997-03-01, 1998-06-30]}'),
		('ada',   'Hooli',    '{[1998-09-01, NOW]}'),
		('grace', 'Initech',  '{[1997-01-01, 1997-12-31], [1999-02-01, NOW]}'),
		('alan',  'Hooli',    '{[1998-01-01, 1998-03-31]}')`, nil)

	// Who works somewhere right now?
	res, err := s.Exec(`
		SELECT person, company FROM Employment
		WHERE contains(valid, now())
		ORDER BY person`, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("currently employed:")
	fmt.Print(tip.Format(res))

	// How long has each person been employed in total? Overlapping
	// spells must be coalesced first — that is group_union.
	res, err = s.Exec(`
		SELECT person, length(group_union(valid)) AS employed
		FROM Employment GROUP BY person ORDER BY person`, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntotal time employed (coalesced):")
	fmt.Print(tip.Format(res))

	// Did ada and grace ever work at the same company at the same time?
	res, err = s.Exec(`
		SELECT a.company, intersect(a.valid, b.valid) AS together
		FROM Employment a, Employment b
		WHERE a.person = 'ada' AND b.person = 'grace'
		AND a.company = b.company
		AND overlaps(a.valid, b.valid)`, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nada and grace overlapped at:")
	fmt.Print(tip.Format(res))

	// Parameters carry Go values, including TIP values.
	cutoff, _ := tip.ParseSpan("365")
	res, err = s.Exec(`
		SELECT person FROM Employment
		GROUP BY person
		HAVING length(group_union(valid)) > :cutoff
		ORDER BY person`, map[string]any{"cutoff": cutoff})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nemployed for more than a year overall:")
	fmt.Print(tip.Format(res))
}
