// Package tip is the public face of TIP (Temporal Information
// Processor), a from-scratch Go reproduction of "TIP: A Temporal
// Extension to Informix" (Yang, Ying, Widom; SIGMOD 2000).
//
// TIP extends a relational engine with five temporal datatypes —
// Chronon, Span, Instant, Period and Element — plus the casts, overloaded
// operators, routines (Allen's operators, element set algebra) and
// aggregates (group_union) that make temporal queries expressible in
// plain SQL. This package wires the engine, the TIP DataBlade, and a
// convenient session API together:
//
//	db := tip.Open()
//	s := db.Session()
//	s.MustExec(`CREATE TABLE Prescription (patient VARCHAR(20), valid Element)`, nil)
//	s.MustExec(`INSERT INTO Prescription VALUES ('Mr.Showbiz', '{[1999-10-01, NOW]}')`, nil)
//	res, _ := s.Exec(`SELECT patient, length(valid) FROM Prescription`, nil)
//
// For the client/server deployment of the paper's Figure 1, see
// DB.Serve and the internal/client package; for the TIP Browser, see
// cmd/tipbrowse.
package tip

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"tip/internal/blade"
	"tip/internal/core"
	"tip/internal/engine"
	"tip/internal/exec"
	"tip/internal/server"
	"tip/internal/temporal"
	"tip/internal/types"
)

// Re-exported temporal kernel types, so applications can work with TIP
// values without importing internal packages.
type (
	// Chronon is a specific point in time (second granularity).
	Chronon = temporal.Chronon
	// Span is a signed duration.
	Span = temporal.Span
	// Instant is an absolute chronon or a NOW-relative time.
	Instant = temporal.Instant
	// Period is a closed interval between two instants.
	Period = temporal.Period
	// Element is a set of periods — the general TIP timestamp.
	Element = temporal.Element
	// Result is a materialised query result.
	Result = exec.Result
)

// Temporal constructors and helpers, re-exported.
var (
	// Now is the NOW-relative instant with zero offset.
	Now = temporal.Now
	// ParseChronon parses "1999-09-01" or "1999-09-01 12:30:00".
	ParseChronon = temporal.ParseChronon
	// ParseSpan parses "7 12:00:00" or "-7".
	ParseSpan = temporal.ParseSpan
	// ParseInstant parses "NOW-1" or a chronon literal.
	ParseInstant = temporal.ParseInstant
	// ParsePeriod parses "[1999-01-01, NOW]".
	ParsePeriod = temporal.ParsePeriod
	// ParseElement parses "{[1999-01-01, 1999-04-30], ...}".
	ParseElement = temporal.ParseElement
	// MakeChronon builds a chronon from civil components.
	MakeChronon = temporal.MakeChronon
	// MustChronon is MakeChronon that panics on error.
	MustChronon = temporal.MustChronon
	// Date builds a midnight chronon.
	Date = temporal.Date
	// MustDate is Date that panics on error.
	MustDate = temporal.MustDate
	// MakePeriod builds a determinate period.
	MakePeriod = temporal.MakePeriod
	// AbsInstant wraps a chronon as an absolute instant.
	AbsInstant = temporal.AbsInstant
	// NowRelative builds the instant NOW+offset.
	NowRelative = temporal.NowRelative
	// MakeElement builds an element from periods.
	MakeElement = temporal.MakeElement
)

// DB is a TIP-enabled database: the engine with the TIP DataBlade
// registered.
type DB struct {
	eng        *engine.Database
	blade      *core.Blade
	reg        *blade.Registry
	durableDir string
}

// Open creates an empty in-memory TIP-enabled database.
func Open() *DB {
	reg := blade.NewRegistry()
	b := core.MustRegister(reg)
	return &DB{eng: engine.New(reg), blade: b, reg: reg}
}

// OpenFile loads a database snapshot previously written with Save.
func OpenFile(path string) (*DB, error) {
	db := Open()
	if err := db.eng.Load(path); err != nil {
		return nil, err
	}
	return db, nil
}

// Save writes a snapshot of the database to path.
func (db *DB) Save(path string) error { return db.eng.Save(path) }

// OpenDurable opens a crash-safe database rooted at dir: it loads
// dir/snapshot.tipdb if present, replays dir/wal.log, and then logs
// every further state-changing statement to the WAL. Call Checkpoint
// periodically to fold the log into a fresh snapshot.
func OpenDurable(dir string) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tip: %w", err)
	}
	db := Open()
	snapshot := filepath.Join(dir, "snapshot.tipdb")
	if _, err := os.Stat(snapshot); err == nil {
		if err := db.eng.Load(snapshot); err != nil {
			return nil, err
		}
	}
	if err := db.eng.ReplayWAL(filepath.Join(dir, "wal.log")); err != nil {
		return nil, err
	}
	if err := db.eng.EnableWAL(filepath.Join(dir, "wal.log")); err != nil {
		return nil, err
	}
	db.durableDir = dir
	return db, nil
}

// SyncPolicy selects how often the WAL is fsynced; see the constants
// below and DESIGN.md's Durability section for the commit contract of
// each policy.
type SyncPolicy = engine.SyncPolicy

const (
	// SyncOnCheckpoint (the default) flushes appends to the OS but
	// fsyncs only at Checkpoint: a crash can lose the tail of
	// acknowledged statements still in the kernel's page cache.
	SyncOnCheckpoint = engine.SyncOnCheckpoint
	// SyncEveryAppend fsyncs before each logged statement returns;
	// concurrent appenders share one fsync (group commit).
	SyncEveryAppend = engine.SyncEveryAppend
	// SyncGrouped fsyncs from a background syncer on a fixed cadence;
	// a crash loses at most one interval of acknowledged statements.
	SyncGrouped = engine.SyncGrouped
)

// SetDurability selects the WAL fsync policy. groupInterval sets the
// background cadence for SyncGrouped (0 keeps the 2ms default); the
// other policies ignore it. Safe to call while the database is open.
func (db *DB) SetDurability(p SyncPolicy, groupInterval time.Duration) {
	db.eng.SetDurability(p, groupInterval)
}

// Durability reports the current WAL fsync policy.
func (db *DB) Durability() SyncPolicy { return db.eng.Durability() }

// ParseDurability parses a command-line durability spec: "checkpoint",
// "strict", or "grouped[=interval]" (for example "grouped=5ms").
func ParseDurability(spec string) (SyncPolicy, time.Duration, error) {
	name, arg, hasArg := strings.Cut(spec, "=")
	if hasArg && name != "grouped" {
		return 0, 0, fmt.Errorf("tip: durability %q takes no argument", name)
	}
	switch name {
	case "checkpoint":
		return SyncOnCheckpoint, 0, nil
	case "strict":
		return SyncEveryAppend, 0, nil
	case "grouped":
		if !hasArg {
			return SyncGrouped, 0, nil
		}
		d, err := time.ParseDuration(arg)
		if err != nil || d <= 0 {
			return 0, 0, fmt.Errorf("tip: bad grouped interval %q", arg)
		}
		return SyncGrouped, d, nil
	default:
		return 0, 0, fmt.Errorf("tip: unknown durability %q (want checkpoint, strict, or grouped[=interval])", spec)
	}
}

// WALPath returns the WAL file of a durable database, or "" for an
// in-memory one. Replication (internal/repl) streams this file.
func (db *DB) WALPath() string {
	if db.durableDir == "" {
		return ""
	}
	return filepath.Join(db.durableDir, "wal.log")
}

// Checkpoint snapshots a durable database and truncates its WAL.
func (db *DB) Checkpoint() error {
	if db.durableDir == "" {
		return fmt.Errorf("tip: Checkpoint requires OpenDurable")
	}
	return db.eng.Checkpoint(filepath.Join(db.durableDir, "snapshot.tipdb"))
}

// Close releases the WAL (if any). The database remains usable
// in-memory but stops logging.
func (db *DB) Close() error { return db.eng.DisableWAL() }

// Engine exposes the underlying engine for advanced integration
// (registering further blades, catalog inspection).
func (db *DB) Engine() *engine.Database { return db.eng }

// Blade exposes the interned TIP types and value constructors.
func (db *DB) Blade() *core.Blade { return db.blade }

// SetClock pins the engine clock that interprets NOW, for reproducible
// runs; the default is the wall clock.
func (db *DB) SetClock(now Chronon) {
	db.eng.SetClock(func() temporal.Chronon { return now })
}

// Serve exposes the database over TCP with the TIP wire protocol; see
// internal/client for the matching client library. Options configure
// statement timeouts, admission control and read deadlines.
func (db *DB) Serve(addr string, opts ...server.Option) (*server.Server, error) {
	return server.Listen(db.eng, addr, opts...)
}

// Session opens a new session (its own transactions and NOW override).
func (db *DB) Session() *Session {
	return &Session{db: db, sess: db.eng.NewSession()}
}

// Session executes SQL with Go-friendly parameter conversion.
type Session struct {
	db   *DB
	sess *engine.Session
}

// Exec runs one SQL statement. Args values may be Go built-ins (int,
// int64, float64, bool, string, time.Time) or TIP temporal values
// (Chronon, Span, Instant, Period, Element).
func (s *Session) Exec(sql string, args map[string]any) (*Result, error) {
	params, err := s.convert(args)
	if err != nil {
		return nil, err
	}
	return s.sess.Exec(sql, params)
}

// MustExec is Exec that panics on error; for setup code and examples.
func (s *Session) MustExec(sql string, args map[string]any) *Result {
	res, err := s.Exec(sql, args)
	if err != nil {
		panic(err)
	}
	return res
}

// ExecScript runs a ';'-separated script, returning the last result.
func (s *Session) ExecScript(sql string, args map[string]any) (*Result, error) {
	params, err := s.convert(args)
	if err != nil {
		return nil, err
	}
	return s.sess.ExecScript(sql, params)
}

// Raw exposes the engine session (typed parameters, statement reuse).
func (s *Session) Raw() *engine.Session { return s.sess }

// Now returns the session's current interpretation of NOW.
func (s *Session) Now() Chronon { return s.sess.Now() }

func (s *Session) convert(args map[string]any) (map[string]types.Value, error) {
	if len(args) == 0 {
		return nil, nil
	}
	params := make(map[string]types.Value, len(args))
	for name, a := range args {
		v, err := s.value(a)
		if err != nil {
			return nil, fmt.Errorf("tip: parameter :%s: %w", name, err)
		}
		params[name] = v
	}
	return params, nil
}

func (s *Session) value(a any) (types.Value, error) {
	switch x := a.(type) {
	case nil:
		return types.NewNull(types.TNull), nil
	case int:
		return types.NewInt(int64(x)), nil
	case int64:
		return types.NewInt(x), nil
	case float64:
		return types.NewFloat(x), nil
	case bool:
		return types.NewBool(x), nil
	case string:
		return types.NewString(x), nil
	case time.Time:
		return s.db.blade.ChrononValue(temporal.ChrononOf(x)), nil
	case temporal.Chronon:
		return s.db.blade.ChrononValue(x), nil
	case temporal.Span:
		return s.db.blade.SpanValue(x), nil
	case temporal.Instant:
		return s.db.blade.InstantValue(x), nil
	case temporal.Period:
		return s.db.blade.PeriodValue(x), nil
	case temporal.Element:
		return s.db.blade.ElementValue(x), nil
	case types.Value:
		return x, nil
	default:
		return types.Value{}, fmt.Errorf("unsupported Go type %T", a)
	}
}

// Format renders a result as an aligned text table.
func Format(res *Result) string { return exec.FormatResult(res) }
