package tip_test

import (
	"os/exec"
	"testing"
)

// TestExamplesRun executes each example end to end; examples are the
// documentation, so they must not rot. Skipped under -short (each run
// compiles a main package).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples skipped in -short mode")
	}
	for _, dir := range []string{"quickstart", "medical", "whatif", "warehouse", "clientserver"} {
		t.Run(dir, func(t *testing.T) {
			out, err := exec.Command("go", "run", "./examples/"+dir).CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", dir, err, out)
			}
			if len(out) == 0 {
				t.Errorf("example %s produced no output", dir)
			}
		})
	}
}
